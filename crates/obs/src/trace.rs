//! Cross-thread span tracer with Chrome trace-event export.
//!
//! Spans record into a sharded global sink (one mutex-protected vector
//! per shard, sharded by thread id) so concurrent workers rarely
//! contend on the same lock. [`take`] drains every shard;
//! [`to_chrome_json`] renders the drained spans as Chrome trace-event
//! JSON — open the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the per-thread timeline.
//!
//! Tracing is **off by default**: unlike the phase accumulator (bounded
//! by the number of phase names) the sink grows with every span, so it
//! should only run when a `--trace-out` style flag asks for it.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

static SINK: [Mutex<Vec<Span>>; SHARDS] = [const { Mutex::new(Vec::new()) }; SHARDS];

/// Process-wide time origin; all span timestamps are offsets from it
/// so they stay monotonic and shard-order independent.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span: a named interval on a specific thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase / operation name.
    pub name: &'static str,
    /// Dense thread id from [`crate::thread_id`].
    pub tid: u32,
    /// Start offset from the process trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional op-profiler enrichment rendered into the trace event's
    /// `args` object.
    pub args: Option<SpanArgs>,
}

/// Profiler enrichment attached to op spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanArgs {
    /// Analytic floating-point operations of the op call.
    pub flops: u64,
    /// Analytic bytes moved (read + written).
    pub bytes: u64,
    /// Input-shape signature, e.g. `2x3,3x4` (may be empty).
    pub shape: &'static str,
}

/// Turns span recording on or off. Enabling pins the trace epoch so
/// the first span doesn't start at a huge offset.
pub fn enable(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one completed span for the calling thread. Callers normally
/// go through `tgl_obs::span`, which checks [`enabled`] first; calling
/// this directly records unconditionally.
pub fn record(name: &'static str, start: Instant, dur: Duration) {
    record_with(name, start, dur, None);
}

/// [`record`] with optional profiler enrichment. Dynamic names must be
/// interned first (see [`crate::intern::intern`]).
pub fn record_with(name: &'static str, start: Instant, dur: Duration, args: Option<SpanArgs>) {
    let tid = crate::thread_id();
    let start_ns = start.saturating_duration_since(epoch()).as_nanos() as u64;
    let span = Span {
        name,
        tid,
        start_ns,
        dur_ns: dur.as_nanos() as u64,
        args,
    };
    let shard = tid as usize % SHARDS;
    SINK[shard]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(span);
}

/// Drains every shard, returning all recorded spans sorted by start
/// time (then thread id) for stable output.
pub fn take() -> Vec<Span> {
    let mut all = Vec::new();
    for shard in &SINK {
        all.append(&mut shard.lock().unwrap_or_else(|e| e.into_inner()));
    }
    all.sort_by_key(|s| (s.start_ns, s.tid));
    all
}

/// Renders spans as Chrome trace-event JSON (complete `"ph":"X"`
/// events, microsecond timestamps as the format requires).
pub fn to_chrome_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Span names are identifiers plus shape signatures like
        // `matmul[2x3,3x4]` — no quotes or backslashes — so plain
        // interpolation is JSON-safe here.
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"tgl\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}",
            s.name,
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.tid
        );
        if let Some(a) = &s.args {
            let _ = write!(
                out,
                ",\"args\":{{\"flops\":{},\"bytes\":{},\"shape\":\"{}\"}}",
                a.flops, a.bytes, a.shape
            );
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Drains the sink and writes a Chrome trace-event JSON file at `path`.
pub fn save_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let spans = take();
    std::fs::write(path, to_chrome_json(&spans))?;
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::serial;

    #[test]
    fn spans_record_across_threads_with_distinct_tids() {
        let _g = serial();
        enable(true);
        take();
        {
            let _s = crate::span("trace-test-main");
        }
        std::thread::spawn(|| {
            let _s = crate::span("trace-test-worker");
        })
        .join()
        .unwrap();
        let spans = take();
        enable(false);
        let main = spans.iter().find(|s| s.name == "trace-test-main").unwrap();
        let worker = spans.iter().find(|s| s.name == "trace-test-worker").unwrap();
        assert_ne!(main.tid, worker.tid);
        // Drained: a second take sees nothing from this test.
        assert!(!take().iter().any(|s| s.name.starts_with("trace-test-")));
    }

    #[test]
    fn chrome_json_shape() {
        let spans = vec![
            Span { name: "alpha", tid: 0, start_ns: 1_500, dur_ns: 2_000_123, args: None },
            Span { name: "beta", tid: 3, start_ns: 10_000, dur_ns: 500, args: None },
        ];
        let json = to_chrome_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"alpha\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.123"));
        assert!(json.contains("\"tid\":3"));
        assert!(json.ends_with("}"));
        assert!(!json.contains("\"args\""));
    }

    #[test]
    fn chrome_json_renders_op_args() {
        let spans = vec![Span {
            name: "matmul[2x3,3x4]",
            tid: 1,
            start_ns: 1_000,
            dur_ns: 2_000,
            args: Some(SpanArgs { flops: 48, bytes: 128, shape: "2x3,3x4" }),
        }];
        let json = to_chrome_json(&spans);
        assert!(json.contains("\"name\":\"matmul[2x3,3x4]\""));
        assert!(json.contains("\"args\":{\"flops\":48,\"bytes\":128,\"shape\":\"2x3,3x4\"}"));
    }

    #[test]
    fn timestamps_are_monotonic_offsets() {
        let _g = serial();
        enable(true);
        take();
        {
            let _a = crate::span("trace-test-order-a");
        }
        std::thread::sleep(Duration::from_millis(1));
        {
            let _b = crate::span("trace-test-order-b");
        }
        let spans = take();
        enable(false);
        let a = spans.iter().find(|s| s.name == "trace-test-order-a").unwrap();
        let b = spans.iter().find(|s| s.name == "trace-test-order-b").unwrap();
        assert!(a.start_ns < b.start_ns);
    }
}
