//! Parallel temporal neighborhood sampling.
//!
//! Implements the engine behind TGLite's `TSampler` (paper Table 2):
//! "Parallel temporal neighborhood sampling, using either uniform or
//! most-recent sampling strategies." Given destination `(node, time)`
//! pairs, it selects up to `k` neighbors per destination among edges
//! *strictly earlier* than the destination's timestamp — the temporal
//! constraint of `N(i, t)` in the paper's message-passing equations —
//! by binary search over the time-sorted T-CSR.
//!
//! Each destination samples independently, so the batch is
//! embarrassingly parallel: work is split over destination chunks on
//! the `tgl-runtime` thread pool (the paper uses 32/64 sampler threads
//! on its two machines; here the count follows `TGL_THREADS`). Uniform
//! sampling seeds one RNG stream per destination from the sampler seed
//! and the destination's batch position, so results are bitwise
//! identical for any thread count or chunk layout.
//!
//! # Examples
//!
//! ```
//! use tgl_graph::TemporalGraph;
//! use tgl_sampler::{SamplingStrategy, TemporalSampler};
//!
//! let g = TemporalGraph::from_edges(3, vec![(0, 1, 1.0), (0, 2, 2.0), (0, 1, 3.0)]);
//! let sampler = TemporalSampler::new(2, SamplingStrategy::Recent);
//! let s = sampler.sample(&g.tcsr(), &[0], &[10.0]);
//! // The two most recent of node 0's three earlier edges.
//! assert_eq!(s.src_nodes, vec![2, 1]);
//! assert_eq!(s.src_times, vec![2.0, 3.0]);
//! ```

use tgl_runtime::rng::{Rng, SeedableRng, StdRng};
use tgl_runtime::{parallel_for, UnsafeSlice};

use tgl_graph::{EdgeId, NodeId, TCsr, Time};

/// Batches smaller than this sample inline on the caller; dispatching
/// to the pool costs more than the sampling itself.
const SEQ_DST_THRESHOLD: usize = 64;

/// Neighbor selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SamplingStrategy {
    /// The `k` most recent earlier edges (paper's default, "recent
    /// sampling").
    #[default]
    Recent,
    /// `k` earlier edges drawn uniformly without replacement.
    Uniform,
}

/// Result of sampling one batch of destinations.
///
/// Rows are grouped by destination in input order: all sampled edges of
/// destination 0, then destination 1, etc. `dst_index[i]` maps sampled
/// edge `i` back to its destination position — the segment ids consumed
/// by segmented operators downstream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NeighborSample {
    /// Sampled neighbor node per edge.
    pub src_nodes: Vec<NodeId>,
    /// Timestamp of each sampled edge.
    pub src_times: Vec<Time>,
    /// Edge id of each sampled edge.
    pub eids: Vec<EdgeId>,
    /// Destination position (0-based within the query batch) per edge.
    pub dst_index: Vec<usize>,
}

impl NeighborSample {
    /// Number of sampled edges.
    pub fn len(&self) -> usize {
        self.src_nodes.len()
    }

    /// True when no edges were sampled.
    pub fn is_empty(&self) -> bool {
        self.src_nodes.is_empty()
    }
}

/// A configured temporal neighborhood sampler.
#[derive(Debug, Clone)]
pub struct TemporalSampler {
    k: usize,
    strategy: SamplingStrategy,
    threads: usize,
    seed: u64,
    window: Option<Time>,
}

impl TemporalSampler {
    /// Creates a sampler taking up to `k` neighbors per destination.
    pub fn new(k: usize, strategy: SamplingStrategy) -> TemporalSampler {
        TemporalSampler {
            k,
            strategy,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 0x7161_1e5d,
            window: None,
        }
    }

    /// Restricts sampling to edges within `window` time units before
    /// the query time (TGL's `duration` setting): only edges with
    /// `t_query - window <= t_edge < t_query` qualify.
    pub fn with_window(mut self, window: Time) -> TemporalSampler {
        self.window = Some(window);
        self
    }

    /// Sets the threading mode: 1 forces sequential sampling on the
    /// caller; anything larger uses the `tgl-runtime` pool (whose
    /// actual width follows `TGL_THREADS`). Output is bitwise identical
    /// either way.
    pub fn with_threads(mut self, threads: usize) -> TemporalSampler {
        self.threads = threads.max(1);
        self
    }

    /// Sets the RNG seed for uniform sampling (deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> TemporalSampler {
        self.seed = seed;
        self
    }

    /// Neighbors per destination.
    pub fn num_neighbors(&self) -> usize {
        self.k
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SamplingStrategy {
        self.strategy
    }

    /// Samples neighbors for each `(dst_nodes[i], dst_times[i])` pair.
    ///
    /// # Panics
    ///
    /// Panics if the two input slices differ in length.
    pub fn sample(&self, csr: &TCsr, dst_nodes: &[NodeId], dst_times: &[Time]) -> NeighborSample {
        assert_eq!(
            dst_nodes.len(),
            dst_times.len(),
            "dst nodes/times length mismatch"
        );
        let n = dst_nodes.len();
        if n == 0 {
            return NeighborSample::default();
        }
        let _lat = tgl_obs::histogram!("sampler.latency_ns").timer();

        // Pass 1: how many edges each destination contributes, so each
        // destination's rows land at an exact offset in pass 2.
        let mut counts = vec![0usize; n];
        {
            let counts = UnsafeSlice::new(&mut counts);
            self.for_each_dst(n, &|range: std::ops::Range<usize>| {
                for i in range {
                    let (nbrs, _, _) = self.candidates(csr, dst_nodes[i], dst_times[i]);
                    // SAFETY: destinations partition the index space, so
                    // each `i` is written by exactly one chunk.
                    unsafe { *counts.get_mut(i) = nbrs.len().min(self.k) };
                }
            });
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let total = offsets[n];
        tgl_obs::counter!("sampler.queries").add(n as u64);
        tgl_obs::counter!("sampler.neighbors").add(total as u64);

        // Pass 2: every destination fills its own disjoint output rows.
        let mut out = NeighborSample {
            src_nodes: vec![NodeId::default(); total],
            src_times: vec![Time::default(); total],
            eids: vec![EdgeId::default(); total],
            dst_index: vec![0usize; total],
        };
        {
            let src_nodes = UnsafeSlice::new(&mut out.src_nodes);
            let src_times = UnsafeSlice::new(&mut out.src_times);
            let eids_out = UnsafeSlice::new(&mut out.eids);
            let dst_index = UnsafeSlice::new(&mut out.dst_index);
            let offsets = &offsets;
            self.for_each_dst(n, &|range: std::ops::Range<usize>| {
                for i in range {
                    let take = offsets[i + 1] - offsets[i];
                    if take == 0 {
                        continue;
                    }
                    // SAFETY: [offsets[i], offsets[i+1]) ranges are
                    // disjoint across destinations.
                    let (sn, st, se, sd) = unsafe {
                        (
                            src_nodes.slice_mut(offsets[i], take),
                            src_times.slice_mut(offsets[i], take),
                            eids_out.slice_mut(offsets[i], take),
                            dst_index.slice_mut(offsets[i], take),
                        )
                    };
                    self.sample_one(csr, dst_nodes[i], dst_times[i], i, sn, st, se, sd);
                }
            });
        }
        // Serial post-pass over the (thread-invariant) output: the
        // sampled-neighbor time-delta distribution is a data-quality
        // signal ("how far back is this batch attending"), observed
        // here so both the inline and the plan-building paths feed it
        // exactly once per query.
        if tgl_obs::insight::active() {
            let dts: Vec<f64> = out
                .dst_index
                .iter()
                .zip(&out.src_times)
                .map(|(&d, &st)| dst_times[d] - st)
                .collect();
            tgl_obs::insight::observe_nbr_dt(&dts);
        }
        out
    }

    /// Runs `f` over `0..n` — inline when configured sequential, else
    /// chunked on the pool. Kernels are written so either path produces
    /// bitwise-identical output.
    fn for_each_dst(&self, n: usize, f: &(dyn Fn(std::ops::Range<usize>) + Sync)) {
        if self.threads <= 1 {
            f(0..n);
        } else {
            parallel_for(n, SEQ_DST_THRESHOLD, f);
        }
    }

    /// The time-eligible neighbor slices for one `(node, t)` query,
    /// after applying the optional window.
    fn candidates<'a>(
        &self,
        csr: &'a TCsr,
        node: NodeId,
        t: Time,
    ) -> (&'a [NodeId], &'a [EdgeId], &'a [Time]) {
        let (mut nbrs, mut eids, mut etimes) = csr.neighbors_before(node, t);
        if let Some(w) = self.window {
            // Entries are time-sorted; drop the too-old prefix.
            let cut = etimes.partition_point(|&et| et < t - w);
            nbrs = &nbrs[cut..];
            eids = &eids[cut..];
            etimes = &etimes[cut..];
        }
        (nbrs, eids, etimes)
    }

    /// Samples one destination's neighbors into its output rows.
    ///
    /// Uniform draws use an RNG seeded from `(sampler seed, dst)` so the
    /// stream is a function of the destination alone — not of which
    /// thread or chunk processed it.
    #[allow(clippy::too_many_arguments)]
    fn sample_one(
        &self,
        csr: &TCsr,
        node: NodeId,
        t: Time,
        dst: usize,
        sn: &mut [NodeId],
        st: &mut [Time],
        se: &mut [EdgeId],
        sd: &mut [usize],
    ) {
        let (nbrs, eids, etimes) = self.candidates(csr, node, t);
        let avail = nbrs.len();
        let take = sn.len();
        sd.fill(dst);
        match self.strategy {
            SamplingStrategy::Recent => {
                let start = avail - take;
                sn.copy_from_slice(&nbrs[start..]);
                st.copy_from_slice(&etimes[start..]);
                se.copy_from_slice(&eids[start..]);
            }
            SamplingStrategy::Uniform => {
                if avail <= self.k {
                    // Degenerate draw: degree does not exceed k, so the
                    // "uniform" sample is just a copy of every neighbor.
                    tgl_obs::counter!("sampler.uniform_fallbacks").incr();
                    sn.copy_from_slice(nbrs);
                    st.copy_from_slice(etimes);
                    se.copy_from_slice(eids);
                } else {
                    let mut rng = StdRng::seed_from_u64(
                        self.seed
                            .wrapping_add((dst as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    // Partial Fisher–Yates over [0, avail): k draws
                    // without replacement in O(k) extra space.
                    let mut swapped: std::collections::HashMap<usize, usize> =
                        std::collections::HashMap::with_capacity(self.k * 2);
                    for draw in 0..take {
                        let r = rng.gen_range(draw..avail);
                        let pick = *swapped.get(&r).unwrap_or(&r);
                        let dv = *swapped.get(&draw).unwrap_or(&draw);
                        swapped.insert(r, dv);
                        sn[draw] = nbrs[pick];
                        st[draw] = etimes[pick];
                        se[draw] = eids[pick];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgl_graph::TemporalGraph;

    /// Star graph: node 0 connected to nodes 1..=5 at times 1..=5.
    fn star() -> TemporalGraph {
        TemporalGraph::from_edges(
            6,
            (1..=5u32).map(|i| (0, i, i as Time)).collect(),
        )
    }

    #[test]
    fn recent_takes_latest_k() {
        let g = star();
        let s = TemporalSampler::new(3, SamplingStrategy::Recent).sample(&g.tcsr(), &[0], &[10.0]);
        assert_eq!(s.src_nodes, vec![3, 4, 5]);
        assert_eq!(s.src_times, vec![3.0, 4.0, 5.0]);
        assert_eq!(s.dst_index, vec![0, 0, 0]);
    }

    #[test]
    fn temporal_constraint_strictly_before() {
        let g = star();
        let s = TemporalSampler::new(10, SamplingStrategy::Recent).sample(&g.tcsr(), &[0], &[3.0]);
        // Only edges at t=1,2 qualify (t=3 excluded).
        assert_eq!(s.src_times, vec![1.0, 2.0]);
    }

    #[test]
    fn no_earlier_edges_empty() {
        let g = star();
        let s = TemporalSampler::new(5, SamplingStrategy::Recent).sample(&g.tcsr(), &[0], &[1.0]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn fewer_than_k_returns_all() {
        let g = star();
        let s = TemporalSampler::new(10, SamplingStrategy::Recent).sample(&g.tcsr(), &[0], &[10.0]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn multiple_destinations_grouped_in_order() {
        let g = star();
        let s = TemporalSampler::new(2, SamplingStrategy::Recent)
            .sample(&g.tcsr(), &[1, 0, 2], &[10.0, 10.0, 10.0]);
        // node 1 has one neighbor (0@1), node 0 two most recent, node 2 one.
        assert_eq!(s.dst_index, vec![0, 1, 1, 2]);
        assert_eq!(s.src_nodes, vec![0, 4, 5, 0]);
    }

    #[test]
    fn uniform_is_deterministic_and_valid() {
        let g = star();
        let sampler = TemporalSampler::new(3, SamplingStrategy::Uniform).with_seed(7);
        let a = sampler.sample(&g.tcsr(), &[0], &[10.0]);
        let b = sampler.sample(&g.tcsr(), &[0], &[10.0]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Without replacement: all eids distinct.
        let mut eids = a.eids.clone();
        eids.sort_unstable();
        eids.dedup();
        assert_eq!(eids.len(), 3);
        // Temporal constraint holds.
        assert!(a.src_times.iter().all(|&t| t < 10.0));
    }

    #[test]
    fn uniform_covers_all_when_k_exceeds_degree() {
        let g = star();
        let s = TemporalSampler::new(9, SamplingStrategy::Uniform).sample(&g.tcsr(), &[0], &[10.0]);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = star();
        let dsts: Vec<NodeId> = (0..6).cycle().take(100).collect();
        let times: Vec<Time> = (0..100).map(|i| 1.0 + (i % 7) as Time).collect();
        let seq = TemporalSampler::new(2, SamplingStrategy::Recent)
            .with_threads(1)
            .sample(&g.tcsr(), &dsts, &times);
        let par = TemporalSampler::new(2, SamplingStrategy::Recent)
            .with_threads(4)
            .sample(&g.tcsr(), &dsts, &times);
        assert_eq!(seq, par);
    }

    #[test]
    fn uniform_parallel_matches_sequential() {
        let g = star();
        let dsts: Vec<NodeId> = (0..6).cycle().take(500).collect();
        let times: Vec<Time> = (0..500).map(|i| 1.0 + (i % 7) as Time).collect();
        let seq = TemporalSampler::new(2, SamplingStrategy::Uniform)
            .with_seed(5)
            .with_threads(1)
            .sample(&g.tcsr(), &dsts, &times);
        let par = TemporalSampler::new(2, SamplingStrategy::Uniform)
            .with_seed(5)
            .with_threads(8)
            .sample(&g.tcsr(), &dsts, &times);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_query_empty_result() {
        let g = star();
        let s = TemporalSampler::new(2, SamplingStrategy::Recent).sample(&g.tcsr(), &[], &[]);
        assert!(s.is_empty());
    }

    #[test]
    fn window_restricts_to_recent_edges() {
        let g = star();
        let s = TemporalSampler::new(10, SamplingStrategy::Recent)
            .with_window(2.5)
            .sample(&g.tcsr(), &[0], &[6.0]);
        // Edges at t=1..=5 exist; window 2.5 before t=6 keeps t in [3.5, 6).
        assert_eq!(s.src_times, vec![4.0, 5.0]);
        // Without the window all five qualify.
        let all = TemporalSampler::new(10, SamplingStrategy::Recent)
            .sample(&g.tcsr(), &[0], &[6.0]);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn window_applies_to_uniform_too() {
        let g = star();
        let s = TemporalSampler::new(2, SamplingStrategy::Uniform)
            .with_window(2.5)
            .with_seed(3)
            .sample(&g.tcsr(), &[0], &[6.0]);
        assert!(s.src_times.iter().all(|&t| (3.5..6.0).contains(&t)));
    }

    #[test]
    fn dst_index_is_nondecreasing() {
        let g = star();
        let dsts: Vec<NodeId> = vec![0, 5, 3, 0];
        let s = TemporalSampler::new(3, SamplingStrategy::Recent)
            .sample(&g.tcsr(), &dsts, &[9.0, 9.0, 9.0, 2.0]);
        assert!(s.dst_index.windows(2).all(|w| w[0] <= w[1]));
    }
}
