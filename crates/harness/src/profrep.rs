//! Roofline-annotated op-profile reporting.
//!
//! Turns the raw per-operator totals collected by
//! [`tgl_obs::profile`] into the `--profile` top-k table: each op's
//! time share, achieved GFLOP/s, and arithmetic intensity are compared
//! against a machine [`Roofline`] (GEMM peak from
//! `BENCH_micro_gemm.json` plus a measured memory-bandwidth probe) to
//! classify it as compute-bound, bandwidth-bound, or pure data
//! movement. Also renders the per-phase coverage lines that check op
//! self-times against the tracer's phase spans.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

use tgl_data::Json;
use tgl_obs::profile::OpStat;

use crate::table::TextTable;

/// Peak GFLOP/s assumed when `BENCH_micro_gemm.json` is not found.
const FALLBACK_PEAK_GFLOPS: f64 = 3.0;

/// The two machine ceilings an op can hit: peak compute throughput and
/// peak memory bandwidth.
#[derive(Debug, Clone, Copy)]
pub struct Roofline {
    /// Peak compute throughput (GFLOP/s), taken as the best measured
    /// GEMM rate for the active kernel mode and thread count.
    pub peak_gflops: f64,
    /// Sustained memory bandwidth (GB/s).
    pub bw_gbs: f64,
    /// Where the peak came from: `"BENCH_micro_gemm.json"` or
    /// `"fallback"`.
    pub peak_source: &'static str,
    /// Pool thread count the peak was calibrated for.
    pub threads: usize,
    /// Kernel mode label (`exact` / `fast`) the peak was filtered by.
    pub kernel: &'static str,
}

impl Roofline {
    /// Detects the machine roofline: GEMM peak from
    /// `BENCH_micro_gemm.json` (searched upward from the working
    /// directory, filtered to the active kernel mode and scaled to the
    /// active pool thread count) and memory bandwidth from
    /// [`memory_bandwidth_gbs`].
    pub fn detect() -> Roofline {
        let threads = tgl_runtime::current_threads();
        let (peak_gflops, peak_source) = gemm_peak_gflops_at(threads);
        Roofline {
            peak_gflops,
            bw_gbs: memory_bandwidth_gbs(),
            peak_source,
            threads,
            kernel: tgl_tensor::kernel::mode().label(),
        }
    }

    /// The ridge point: arithmetic intensity (FLOP/byte) above which
    /// the compute ceiling binds before the bandwidth ceiling.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_gflops / self.bw_gbs
    }

    /// Classifies an op from its totals: no FLOPs at all is pure data
    /// movement; otherwise compare arithmetic intensity to the ridge.
    pub fn verdict(&self, flops: u64, bytes: u64) -> &'static str {
        if flops == 0 {
            "data-move"
        } else if bytes == 0 || (flops as f64 / bytes as f64) >= self.ridge_ai() {
            "compute-bound"
        } else {
            "bandwidth-bound"
        }
    }
}

/// Searches the working directory and its ancestors for `name`.
fn find_upwards(name: &str) -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(name);
        if candidate.is_file() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Whether a bench entry applies to the active kernel mode: entries
/// carry a `"kernel"` tag since the SIMD split; untagged entries (old
/// artifacts) stay candidates for every mode.
fn kernel_matches(entry: &Json, label: &str) -> bool {
    entry
        .get("kernel")
        .and_then(|k| k.as_str())
        .is_none_or(|k| k == label)
}

/// Max `gflops` over mode-matching entries of a bench array.
fn max_gflops(arr: &Json, label: &str, extra: impl Fn(&Json) -> bool) -> Option<f64> {
    arr.as_arr()?
        .iter()
        .filter(|r| kernel_matches(r, label) && extra(r))
        .filter_map(|r| r.get("gflops")?.as_num())
        .fold(None, |best: Option<f64>, g| Some(best.map_or(g, |b| b.max(g))))
}

/// Best measured single-thread GEMM rate for the active kernel mode.
/// Kept as the stable entry point; delegates to [`gemm_peak_gflops_at`].
pub fn gemm_peak_gflops() -> (f64, &'static str) {
    gemm_peak_gflops_at(1)
}

/// Best measured GEMM rate from `BENCH_micro_gemm.json` for the active
/// kernel mode at the given pool thread count, with a conservative
/// fallback when the artifact is missing or unparsable.
///
/// The single-thread peak is the max over the `results[]` series
/// (filtered by `kernel` tag). For `threads > 1` the `multi_thread[]`
/// sweep supplies a scale factor: the measured `speedup_vs_1t` at that
/// thread count, or — when the report asks for a count beyond the
/// sweep — a linear extrapolation from the largest swept count. The
/// scale never drops below 1 so a poorly-scaling sweep cannot push the
/// ceiling under the single-thread rate (which would make honest
/// single-thread ops read as >100% of peak).
pub fn gemm_peak_gflops_at(threads: usize) -> (f64, &'static str) {
    let label = tgl_tensor::kernel::mode().label();
    let parsed = find_upwards("BENCH_micro_gemm.json")
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|v| {
            let base = max_gflops(v.get("results")?, label, |_| true)?;
            if threads <= 1 {
                return Some(base);
            }
            let scale = v
                .get("multi_thread")
                .and_then(|mt| {
                    let arr = mt.as_arr()?;
                    // Exact thread-count match first.
                    let at = |t: usize| {
                        arr.iter()
                            .filter(|r| kernel_matches(r, label))
                            .filter(|r| {
                                r.get("threads").and_then(Json::as_num) == Some(t as f64)
                            })
                            .filter_map(|r| r.get("speedup_vs_1t")?.as_num())
                            .fold(None, |best: Option<f64>, s| {
                                Some(best.map_or(s, |b| b.max(s)))
                            })
                    };
                    if let Some(s) = at(threads) {
                        return Some(s);
                    }
                    // Beyond the sweep: linear extrapolation from the
                    // largest swept count (ideal scaling of the tail,
                    // a deliberate over-estimate of the ceiling).
                    let swept_max = arr
                        .iter()
                        .filter(|r| kernel_matches(r, label))
                        .filter_map(|r| r.get("threads")?.as_num())
                        .fold(None, |best: Option<f64>, t| {
                            Some(best.map_or(t, |b| b.max(t)))
                        })?;
                    let s = at(swept_max as usize)?;
                    Some(s * threads as f64 / swept_max)
                })
                // No sweep recorded: assume ideal linear scaling so the
                // ceiling stays an upper bound.
                .unwrap_or(threads as f64);
            Some(base * scale.max(1.0))
        });
    match parsed {
        Some(peak) if peak > 0.0 => (peak, "BENCH_micro_gemm.json"),
        _ => (FALLBACK_PEAK_GFLOPS * threads.max(1) as f64, "fallback"),
    }
}

/// Sustained memory bandwidth in GB/s, probed once per process with a
/// large out-of-cache copy (read + write counted). Overridable via
/// `TGL_MEM_BW_GBS` for reproducible reports.
pub fn memory_bandwidth_gbs() -> f64 {
    static BW: OnceLock<f64> = OnceLock::new();
    *BW.get_or_init(|| {
        if let Some(v) = std::env::var("TGL_MEM_BW_GBS")
            .ok()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|v| *v > 0.0)
        {
            return v;
        }
        probe_bandwidth_gbs()
    })
}

fn probe_bandwidth_gbs() -> f64 {
    // 8 Mi f32 = 32 MiB per buffer, far beyond typical LLC sizes, so
    // the copy streams through memory. Best of three rounds.
    const ELEMS: usize = 8 << 20;
    let src = vec![1.0f32; ELEMS];
    let mut dst = vec![0.0f32; ELEMS];
    let bytes_moved = (2 * ELEMS * std::mem::size_of::<f32>()) as f64;
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        dst.copy_from_slice(&src);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(&dst);
        best = best.min(dt.max(1e-9));
    }
    bytes_moved / best / 1e9
}

/// One op with its roofline-derived metrics, ready for the table.
#[derive(Debug, Clone)]
pub struct OpRow {
    /// The raw profiler totals.
    pub stat: OpStat,
    /// Fraction of total self time across all ops (0..=1).
    pub share: f64,
    /// Achieved GFLOP/s over self time.
    pub gflops: f64,
    /// Arithmetic intensity in FLOP/byte (0 when no bytes recorded).
    pub ai: f64,
    /// Roofline verdict: `compute-bound` / `bandwidth-bound` /
    /// `data-move`.
    pub verdict: &'static str,
}

/// Derives roofline metrics for every op, preserving the profiler's
/// self-time-descending order.
pub fn analyze(stats: &[OpStat], roof: &Roofline) -> Vec<OpRow> {
    let total_self: u64 = stats.iter().map(|s| s.self_ns).sum();
    stats
        .iter()
        .map(|s| {
            let secs = s.self_ns as f64 / 1e9;
            let bytes = s.bytes_read + s.bytes_written;
            OpRow {
                share: if total_self == 0 {
                    0.0
                } else {
                    s.self_ns as f64 / total_self as f64
                },
                gflops: if secs > 0.0 { s.flops as f64 / secs / 1e9 } else { 0.0 },
                ai: if bytes > 0 { s.flops as f64 / bytes as f64 } else { 0.0 },
                verdict: roof.verdict(s.flops, bytes),
                stat: s.clone(),
            }
        })
        .collect()
}

/// Renders the `--profile` report: roofline header plus a top-`k` op
/// table sorted by self time.
pub fn render_table(rows: &[OpRow], roof: &Roofline, top_k: usize) -> String {
    let mut out = format!(
        "op profile — roofline: peak {:.2} GFLOP/s ({}, kernel {}, {}t), mem {:.1} GB/s, ridge {:.3} FLOP/B\n",
        roof.peak_gflops,
        roof.peak_source,
        roof.kernel,
        roof.threads,
        roof.bw_gbs,
        roof.ridge_ai()
    );
    let mut table = TextTable::new(&[
        "op", "phase", "calls", "self_s", "share", "gflops", "ai", "verdict", "shape",
    ]);
    for row in rows.iter().take(top_k) {
        // An achieved rate above the calibrated ceiling means the
        // roofline is stale (e.g. bench artifact from a pre-SIMD
        // build); flag it rather than report >100% of peak silently.
        let over_peak = row.gflops > roof.peak_gflops * 1.01;
        table.row(&[
            row.stat.op.to_string(),
            row.stat.phase.to_string(),
            row.stat.calls.to_string(),
            format!("{:.4}", row.stat.self_ns as f64 / 1e9),
            format!("{:.1}%", row.share * 100.0),
            format!("{:.2}{}", row.gflops, if over_peak { " >peak!" } else { "" }),
            format!("{:.3}", row.ai),
            row.verdict.to_string(),
            row.stat.shape.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push('\n');
    if rows.len() > top_k {
        out.push_str(&format!("... {} more ops\n", rows.len() - top_k));
    }
    out
}

/// One phase's attribution coverage: how much of the tracer's phase
/// span is accounted for by op self time inside that phase.
#[derive(Debug, Clone)]
pub struct PhaseCoverage {
    /// Phase name as pushed via `tgl_obs::span`.
    pub phase: String,
    /// Tracer phase-accumulator seconds.
    pub phase_s: f64,
    /// Sum of op self times attributed to this phase, in seconds.
    pub ops_s: f64,
}

impl PhaseCoverage {
    /// Attributed fraction (1.0 = ops fully explain the phase span).
    pub fn fraction(&self) -> f64 {
        if self.phase_s <= 0.0 {
            0.0
        } else {
            self.ops_s / self.phase_s
        }
    }
}

/// Joins op self times against tracer phase seconds, one row per phase
/// that appears in either source, ordered by descending phase seconds.
pub fn phase_coverage(stats: &[OpStat], phases_s: &[(String, f64)]) -> Vec<PhaseCoverage> {
    let mut rows: Vec<PhaseCoverage> = phases_s
        .iter()
        .map(|(name, secs)| PhaseCoverage {
            phase: name.clone(),
            phase_s: *secs,
            // fold, not sum(): an empty f64 sum() yields -0.0, which
            // renders as "-0.0000" for op-free phases.
            ops_s: stats
                .iter()
                .filter(|s| s.phase == name)
                .fold(0.0, |acc, s| acc + s.self_ns as f64 / 1e9),
        })
        .collect();
    rows.sort_by(|a, b| b.phase_s.total_cmp(&a.phase_s));
    rows
}

/// Renders the per-phase coverage lines printed under the op table.
pub fn render_coverage(rows: &[PhaseCoverage]) -> String {
    let mut out = String::from("phase coverage (op self time / tracer phase span):\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<16} {:>9.4}s of {:>9.4}s  ({:>5.1}%)\n",
            r.phase,
            r.ops_s,
            r.phase_s,
            r.fraction() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(op: &'static str, phase: &'static str, self_ns: u64, flops: u64, bytes: u64) -> OpStat {
        OpStat {
            op,
            phase,
            calls: 1,
            self_ns,
            total_ns: self_ns,
            flops,
            bytes_read: bytes / 2,
            bytes_written: bytes - bytes / 2,
            pool_hits: 0,
            pool_misses: 0,
            transfer_bytes: 0,
            shape: "",
        }
    }

    fn roof() -> Roofline {
        Roofline {
            peak_gflops: 4.0,
            bw_gbs: 8.0,
            peak_source: "fallback",
            threads: 1,
            kernel: "exact",
        }
    }

    #[test]
    fn verdicts_split_at_the_ridge() {
        let r = roof();
        // ridge = 0.5 FLOP/byte
        assert_eq!(r.verdict(0, 1000), "data-move");
        assert_eq!(r.verdict(1000, 1000), "compute-bound");
        assert_eq!(r.verdict(100, 1000), "bandwidth-bound");
        assert_eq!(r.verdict(1, 0), "compute-bound");
    }

    #[test]
    fn analyze_computes_share_and_rates() {
        let stats = vec![
            stat("matmul", "attention", 3_000_000, 6_000_000, 1_000),
            stat("add", "attention", 1_000_000, 1_000, 1_000_000),
        ];
        let rows = analyze(&stats, &roof());
        assert!((rows[0].share - 0.75).abs() < 1e-9);
        assert!((rows[1].share - 0.25).abs() < 1e-9);
        // 6e6 FLOPs over 3 ms = 2 GFLOP/s.
        assert!((rows[0].gflops - 2.0).abs() < 1e-9);
        assert_eq!(rows[0].verdict, "compute-bound");
        assert_eq!(rows[1].verdict, "bandwidth-bound");
    }

    #[test]
    fn gemm_peak_reads_bench_artifact() {
        // The workspace root holds BENCH_micro_gemm.json; tests run
        // from the crate dir, so the upward search must find it.
        let (peak, source) = gemm_peak_gflops();
        assert_eq!(source, "BENCH_micro_gemm.json");
        assert!(peak > 0.5 && peak < 10_000.0, "implausible peak {peak}");
    }

    #[test]
    fn multi_thread_peak_never_below_single_thread() {
        // Whatever the artifact holds (tagged or untagged, with or
        // without a multi_thread sweep), the scaled ceiling must not
        // drop below the 1-thread peak: scale is clamped at >= 1.
        let (p1, _) = gemm_peak_gflops_at(1);
        let (p4, src) = gemm_peak_gflops_at(4);
        assert_eq!(src, "BENCH_micro_gemm.json");
        assert!(p4 >= p1, "peak at 4t ({p4}) below 1t ({p1})");
    }

    #[test]
    fn kernel_tag_filter_accepts_untagged_entries() {
        let entry = Json::parse(r#"{"gflops": 3.0}"#).unwrap();
        assert!(kernel_matches(&entry, "exact"));
        assert!(kernel_matches(&entry, "fast"));
        let tagged = Json::parse(r#"{"kernel": "fast", "gflops": 30.0}"#).unwrap();
        assert!(kernel_matches(&tagged, "fast"));
        assert!(!kernel_matches(&tagged, "exact"));
    }

    #[test]
    fn over_peak_rates_are_flagged_in_the_table() {
        let stats = vec![stat("matmul", "attention", 1_000_000, 100_000_000, 1_000)];
        let r = roof(); // peak 4.0; achieved 100 GFLOP/s
        let text = render_table(&analyze(&stats, &r), &r, 5);
        assert!(text.contains(">peak!"), "stale roofline must be flagged:\n{text}");
        let calm = vec![stat("matmul", "attention", 1_000_000, 1_000_000, 1_000)];
        let text = render_table(&analyze(&calm, &r), &r, 5);
        assert!(!text.contains(">peak!"), "1 GFLOP/s under a 4.0 peak must not flag");
    }

    #[test]
    fn bandwidth_env_override_wins() {
        // The probe itself is covered implicitly; the override keeps
        // this test instant and deterministic.
        std::env::set_var("TGL_MEM_BW_GBS", "12.5");
        let bw = memory_bandwidth_gbs();
        std::env::remove_var("TGL_MEM_BW_GBS");
        assert!((bw - 12.5).abs() < 1e-9);
    }

    #[test]
    fn table_names_top_ops_and_roofline() {
        let stats = vec![
            stat("matmul", "attention", 3_000_000, 6_000_000, 1_000),
            stat("add", "(no-phase)", 1_000_000, 1_000, 1_000_000),
        ];
        let r = roof();
        let text = render_table(&analyze(&stats, &r), &r, 1);
        assert!(text.contains("matmul"));
        assert!(text.contains("ridge"));
        assert!(text.contains("1 more ops"));
        assert!(!text.contains("\nadd"), "beyond top-k must be elided");
    }

    #[test]
    fn coverage_joins_ops_to_phases() {
        let stats = vec![
            stat("matmul", "attention", 800_000_000, 1, 1),
            stat("add", "attention", 100_000_000, 1, 1),
            stat("cat", "sample", 50_000_000, 0, 1),
        ];
        let phases = vec![("attention".to_string(), 1.0), ("sample".to_string(), 0.1)];
        let rows = phase_coverage(&stats, &phases);
        assert_eq!(rows[0].phase, "attention");
        assert!((rows[0].ops_s - 0.9).abs() < 1e-9);
        assert!((rows[0].fraction() - 0.9).abs() < 1e-9);
        assert!((rows[1].ops_s - 0.05).abs() < 1e-9);
        let text = render_coverage(&rows);
        assert!(text.contains("attention") && text.contains("90.0%"));
    }
}
