//! CSV metric logging.
//!
//! The paper's artifact "will write output text to the console and
//! timing data to CSV files" which its plotting scripts consume. This
//! module provides the same workflow: record per-epoch/per-phase rows
//! during a run, then write a CSV.

use std::io::Write;
use std::path::Path;

use crate::EpochStats;

/// An append-only metric log with a fixed column set.
#[derive(Debug, Clone, Default)]
pub struct MetricLog {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MetricLog {
    /// Creates a log with the given column names.
    pub fn new(columns: &[&str]) -> MetricLog {
        MetricLog {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// A log with the standard per-epoch training columns.
    pub fn for_training() -> MetricLog {
        MetricLog::new(&["epoch", "loss", "train_s", "val_ap"])
    }

    /// Appends a raw row (padded/truncated to the column count).
    pub fn record(&mut self, cells: &[String]) {
        let mut row = cells.to_vec();
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a standard training row (see [`MetricLog::for_training`]).
    pub fn record_epoch(&mut self, epoch: usize, stats: &EpochStats) {
        self.record(&[
            epoch.to_string(),
            format!("{:.6}", stats.loss),
            format!("{:.4}", stats.train_time_s),
            format!("{:.6}", stats.val_ap),
        ]);
    }

    /// Number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the log as CSV text (header + rows, RFC-4180 quoting).
    pub fn to_csv(&self) -> String {
        let mut out = Vec::new();
        self.write_csv(&mut out).expect("write to Vec cannot fail");
        String::from_utf8(out).expect("CSV output is UTF-8")
    }

    /// Streams the log as CSV into `w` (header + rows). Cells
    /// containing commas, double quotes, or line breaks (`\n` or `\r`)
    /// are quoted per RFC 4180, with embedded quotes doubled, so
    /// arbitrary cell content round-trips through standard CSV readers.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write_row(w, &self.columns)?;
        for row in &self.rows {
            write_row(w, row)?;
        }
        Ok(())
    }

    /// Writes the CSV to `path`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_csv(&mut f)?;
        f.flush()
    }
}

fn write_row<W: Write>(w: &mut W, cells: &[String]) -> std::io::Result<()> {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            w.write_all(b",")?;
        }
        if cell.contains([',', '"', '\n', '\r']) {
            w.write_all(b"\"")?;
            w.write_all(cell.replace('"', "\"\"").as_bytes())?;
            w.write_all(b"\"")?;
        } else {
            w.write_all(cell.as_bytes())?;
        }
    }
    w.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_and_quoting() {
        let mut log = MetricLog::new(&["a", "b"]);
        log.record(&["1".into(), "plain".into()]);
        log.record(&["2".into(), "has,comma".into()]);
        log.record(&["3".into(), "has\"quote".into()]);
        let csv = log.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,plain");
        assert_eq!(lines[2], "2,\"has,comma\"");
        assert_eq!(lines[3], "3,\"has\"\"quote\"");
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn epoch_rows_use_standard_columns() {
        let mut log = MetricLog::for_training();
        log.record_epoch(
            0,
            &EpochStats {
                loss: 0.5,
                train_time_s: 1.25,
                val_ap: 0.9,
            },
        );
        let csv = log.to_csv();
        assert!(csv.starts_with("epoch,loss,train_s,val_ap\n"));
        assert!(csv.contains("0,0.500000,1.2500,0.900000"));
    }

    #[test]
    fn save_roundtrip() {
        let mut log = MetricLog::new(&["x"]);
        log.record(&["42".into()]);
        let dir = std::env::temp_dir().join("tgl-harness-log");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.csv");
        log.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x\n42\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn short_rows_are_padded() {
        let mut log = MetricLog::new(&["a", "b", "c"]);
        log.record(&["only".into()]);
        assert_eq!(log.to_csv().lines().nth(1), Some("only,,"));
    }

    #[test]
    fn write_csv_quotes_line_breaks_and_crlf() {
        let mut log = MetricLog::new(&["k", "v"]);
        log.record(&["1".into(), "line\nbreak".into()]);
        log.record(&["2".into(), "carriage\rreturn".into()]);
        log.record(&["3".into(), "crlf\r\nboth".into()]);
        let mut buf = Vec::new();
        log.write_csv(&mut buf).unwrap();
        let csv = String::from_utf8(buf).unwrap();
        assert!(csv.contains("1,\"line\nbreak\"\n"));
        assert!(csv.contains("2,\"carriage\rreturn\"\n"));
        assert!(csv.contains("3,\"crlf\r\nboth\"\n"));
        assert_eq!(csv, log.to_csv(), "to_csv and write_csv must agree");
    }

    #[test]
    fn write_csv_adversarial_cells_round_trip() {
        // A minimal RFC-4180 reader: if it can reconstruct the cells,
        // so can any spreadsheet/pandas-style consumer.
        fn parse(csv: &str) -> Vec<Vec<String>> {
            let mut rows = Vec::new();
            let mut row = Vec::new();
            let mut cell = String::new();
            let mut chars = csv.chars().peekable();
            let mut quoted = false;
            while let Some(c) = chars.next() {
                if quoted {
                    if c == '"' {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            cell.push('"');
                        } else {
                            quoted = false;
                        }
                    } else {
                        cell.push(c);
                    }
                } else {
                    match c {
                        '"' => quoted = true,
                        ',' => row.push(std::mem::take(&mut cell)),
                        '\n' => {
                            row.push(std::mem::take(&mut cell));
                            rows.push(std::mem::take(&mut row));
                        }
                        c => cell.push(c),
                    }
                }
            }
            rows
        }
        let nasty = [
            "plain",
            "comma,inside",
            "quote\"inside",
            "\"fully quoted\"",
            "new\nline",
            "cr\rhere",
            "all,of\"it\r\n,together",
            "",
        ];
        let mut log = MetricLog::new(&["idx", "payload"]);
        for (i, cell) in nasty.iter().enumerate() {
            log.record(&[i.to_string(), cell.to_string()]);
        }
        let parsed = parse(&log.to_csv());
        assert_eq!(parsed.len(), nasty.len() + 1, "header + one row per cell");
        for (i, cell) in nasty.iter().enumerate() {
            assert_eq!(parsed[i + 1], vec![i.to_string(), cell.to_string()]);
        }
    }
}
