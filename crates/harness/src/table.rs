//! Fixed-width text rendering for paper-style tables and bar figures.

/// A simple left-aligned text table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with column separators and a header rule.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&render_row(row));
        }
        out
    }
}

/// Formats a seconds value as the paper does (2 decimal places).
pub fn secs(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a speedup as `(N.NNx)`.
pub fn speedup(baseline: f64, ours: f64) -> String {
    if ours <= 0.0 {
        return "(n/a)".into();
    }
    format!("({:.2}x)", baseline / ours)
}

/// Formats an AP fraction as a percentage with 2 decimals (paper
/// style, e.g. `98.77`).
pub fn ap(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

/// Renders a horizontal ASCII bar scaled to `max` (for figure-style
/// output).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let frac = if max > 0.0 { (value / max).clamp(0.0, 1.0) } else { 0.0 };
    let n = (frac * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["Data", "Time"]);
        t.row(&["Wiki".into(), "1.23".into()]);
        t.row(&["LongerName".into(), "45.6".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Data"));
        assert!(lines[2].starts_with("Wiki"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(&["A", "B", "C"]);
        t.row(&["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(speedup(2.0, 1.0), "(2.00x)");
        assert_eq!(speedup(1.0, 0.0), "(n/a)");
        assert_eq!(ap(0.9877), "98.77");
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10, "clamped at width");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
