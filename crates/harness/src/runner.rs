//! Experiment configuration and execution.
//!
//! One experiment = framework × model × dataset × data placement,
//! mirroring the grid of the paper's §5. [`run_experiment`] builds the
//! dataset, places data on the simulated memory tiers, trains, and
//! returns the numbers each table/figure reports.

use tgl_baseline::{BaselineApan, BaselineJodie, BaselineTgat, BaselineTgn};
use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_device::{Device, TransferModel};
use tgl_models::{Apan, Jodie, ModelConfig, OptFlags, TemporalModel, Tgat, Tgn};
use tglite::TContext;

use crate::{EpochStats, TrainConfig, Trainer};

/// Which framework implementation runs (the paper's three bar groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// The MFG-based baseline (paper: "TGL").
    Tgl,
    /// TGLite with only `preload()` (paper: "TGLite").
    TgLite,
    /// TGLite with all applicable optimization operators
    /// (paper: "TGLite+opt").
    TgLiteOpt,
}

impl Framework {
    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Framework::Tgl => "TGL",
            Framework::TgLite => "TGLite",
            Framework::TgLiteOpt => "TGLite+opt",
        }
    }

    /// The three frameworks in presentation order.
    pub fn all() -> [Framework; 3] {
        [Framework::Tgl, Framework::TgLite, Framework::TgLiteOpt]
    }
}

/// Which TGNN model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// JODIE (RNN memory, no sampling).
    Jodie,
    /// APAN (mailbox attention + propagation).
    Apan,
    /// TGAT (attention over sampled neighborhoods).
    Tgat,
    /// TGN (GRU memory + attention).
    Tgn,
}

impl ModelKind {
    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Jodie => "JODIE",
            ModelKind::Apan => "APAN",
            ModelKind::Tgat => "TGAT",
            ModelKind::Tgn => "TGN",
        }
    }

    /// The four models in the paper's presentation order.
    pub fn all() -> [ModelKind; 4] {
        [ModelKind::Jodie, ModelKind::Apan, ModelKind::Tgat, ModelKind::Tgn]
    }
}

/// Where feature/memory/mailbox data lives during training (paper
/// §5.2: all-on-GPU vs CPU-to-GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Data resident on the accelerator tier; no per-batch transfers.
    AllOnDevice,
    /// Data resident on host; per-batch transfers through the PCIe
    /// cost model.
    HostResident,
}

impl Placement {
    /// Label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::AllOnDevice => "all-on-GPU",
            Placement::HostResident => "CPU-to-GPU",
        }
    }
}

/// A full experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Framework under test.
    pub framework: Framework,
    /// Model under test.
    pub model: ModelKind,
    /// Dataset shape.
    pub dataset: DatasetSpec,
    /// Data placement.
    pub placement: Placement,
    /// Model hyperparameters.
    pub model_cfg: ModelConfig,
    /// Training hyperparameters.
    pub train_cfg: TrainConfig,
    /// Parameter seed (shared across frameworks for fair accuracy
    /// comparison).
    pub seed: u64,
    /// Transfer cost model applied in the host-resident placement
    /// (all-on-device disables transfer costs).
    pub transfer: TransferModel,
}

impl ExperimentConfig {
    /// The paper's default setting for a (framework, model, dataset,
    /// placement) cell, with reproduction-scale hyperparameters.
    pub fn paper_default(
        framework: Framework,
        model: ModelKind,
        kind: DatasetKind,
        placement: Placement,
    ) -> ExperimentConfig {
        ExperimentConfig {
            framework,
            model,
            dataset: DatasetSpec::of(kind),
            placement,
            model_cfg: ModelConfig {
                emb_dim: 32,
                time_dim: 16,
                heads: 2,
                n_layers: 2,
                n_neighbors: 10,
                mailbox_slots: 10,
            },
            train_cfg: TrainConfig {
                batch_size: 200,
                epochs: 3,
                lr: 1e-3,
                seed: 7,
            },
            seed: 42,
            transfer: TransferModel::pcie_v100(),
        }
    }
}

/// The measured outputs of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Per-epoch stats.
    pub epochs: Vec<EpochStats>,
    /// Mean training seconds per epoch.
    pub train_s_per_epoch: f64,
    /// Best validation AP across epochs (the paper's Table 4 metric).
    pub best_val_ap: f64,
    /// Test-split inference AP (Table 5 metric).
    pub test_ap: f64,
    /// Test-split inference seconds (Table 5 metric).
    pub test_s: f64,
    /// Peak simulated device-memory bytes observed.
    pub peak_device_bytes: u64,
    /// Worker threads the compute pool ran with (run metadata; see
    /// `TGL_THREADS`).
    pub threads: usize,
}

/// Builds the model for a framework/kind pair on an existing context.
pub fn build_model(
    framework: Framework,
    kind: ModelKind,
    ctx: &TContext,
    cfg: ModelConfig,
    seed: u64,
) -> Box<dyn TemporalModel> {
    let opts = match framework {
        Framework::Tgl => OptFlags::none(), // unused by baseline
        Framework::TgLite => OptFlags::preload_only(),
        Framework::TgLiteOpt => OptFlags::all(),
    };
    match framework {
        Framework::Tgl => match kind {
            ModelKind::Jodie => Box::new(BaselineJodie::new(ctx, cfg, seed)),
            ModelKind::Apan => Box::new(BaselineApan::new(ctx, cfg, seed)),
            ModelKind::Tgat => Box::new(BaselineTgat::new(ctx, cfg, seed)),
            ModelKind::Tgn => Box::new(BaselineTgn::new(ctx, cfg, seed)),
        },
        Framework::TgLite | Framework::TgLiteOpt => match kind {
            ModelKind::Jodie => Box::new(Jodie::new(ctx, cfg, opts, seed)),
            ModelKind::Apan => Box::new(Apan::new(ctx, cfg, opts, seed)),
            ModelKind::Tgat => Box::new(Tgat::new(ctx, cfg, opts, seed)),
            ModelKind::Tgn => Box::new(Tgn::new(ctx, cfg, opts, seed)),
        },
    }
}

/// Prepares a context for an experiment: generates the dataset, places
/// features on the right tier, and installs the transfer cost model.
///
/// The compute device is always the accelerator tier; `placement`
/// decides where the *data* lives, exactly as in the paper's two
/// training cases.
pub fn prepare_context(
    spec: &DatasetSpec,
    placement: Placement,
    transfer: TransferModel,
) -> (TContext, Split) {
    let (g, _stats) = generate(spec);
    if placement == Placement::AllOnDevice {
        // One-time bulk load before timing starts.
        if let Some(f) = g.node_feats() {
            g.set_node_feats(f.to(Device::Accel));
        }
        if let Some(f) = g.edge_feats() {
            g.set_edge_feats(f.to(Device::Accel));
        }
    }
    tgl_device::set_transfer_model(match placement {
        Placement::AllOnDevice => TransferModel::disabled(),
        Placement::HostResident => transfer,
    });
    let split = Split::standard(&g);
    let ctx = TContext::with_device(g, Device::Accel);
    (ctx, split)
}

/// Runs an experiment under a simulated device-memory capacity cap,
/// reporting OOM as an error instead of aborting — how the paper's
/// Table 7 "OOM" entries are produced.
///
/// # Errors
///
/// Returns `Err` with a human-readable OOM description when the run
/// exceeds `capacity_bytes` on the accelerator tier; propagates any
/// other panic.
pub fn run_experiment_with_capacity(
    cfg: &ExperimentConfig,
    capacity_bytes: Option<u64>,
) -> Result<ExperimentResult, String> {
    tgl_device::set_capacity(Device::Accel, capacity_bytes);
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_experiment(cfg)));
    tgl_device::set_capacity(Device::Accel, None);
    tgl_device::set_transfer_model(TransferModel::disabled());
    match out {
        Ok(r) => Ok(r),
        Err(payload) => {
            if let Some(oom) = payload.downcast_ref::<tglite::tensor::DeviceOom>() {
                Err(format!("OOM ({})", oom.0))
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// Runs one experiment end-to-end and returns its measurements.
pub fn run_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let transfer = cfg.transfer;
    let (ctx, split) = prepare_context(&cfg.dataset, cfg.placement, transfer);
    // Reset watermarks/counters only: capacity caps installed by the
    // caller (run_experiment_with_capacity) must survive.
    tgl_device::reset_stats();
    let mut model = build_model(cfg.framework, cfg.model, &ctx, cfg.model_cfg, cfg.seed);
    let (neg_lo, neg_hi) = if cfg.dataset.bipartite() {
        (cfg.dataset.n_src as u32, cfg.dataset.num_nodes() as u32)
    } else {
        (0, cfg.dataset.num_nodes() as u32)
    };
    let trainer = Trainer::new(cfg.train_cfg, neg_lo, neg_hi);
    let (epochs, best_val_ap, test_ap, test_s) = trainer.run(model.as_mut(), &ctx, &split);
    let train_s_per_epoch =
        epochs.iter().map(|e| e.train_time_s).sum::<f64>() / epochs.len().max(1) as f64;
    let peak = tgl_device::stats().accel_peak_bytes;
    tgl_device::set_transfer_model(TransferModel::disabled());
    ExperimentResult {
        epochs,
        train_s_per_epoch,
        best_val_ap,
        test_ap,
        test_s,
        peak_device_bytes: peak,
        threads: tgl_runtime::current_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(framework: Framework, model: ModelKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::paper_default(
            framework,
            model,
            DatasetKind::Wiki,
            Placement::AllOnDevice,
        );
        cfg.dataset = cfg.dataset.scaled_down(20);
        cfg.model_cfg = ModelConfig::tiny();
        cfg.train_cfg.epochs = 1;
        cfg.train_cfg.batch_size = 60;
        cfg
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Framework::Tgl.label(), "TGL");
        assert_eq!(Framework::TgLiteOpt.label(), "TGLite+opt");
        assert_eq!(ModelKind::Tgat.label(), "TGAT");
        assert_eq!(Placement::HostResident.label(), "CPU-to-GPU");
        assert_eq!(Framework::all().len(), 3);
        assert_eq!(ModelKind::all().len(), 4);
    }

    #[test]
    fn tiny_experiment_runs_all_frameworks() {
        for fw in Framework::all() {
            let r = run_experiment(&tiny_cfg(fw, ModelKind::Tgat));
            assert_eq!(r.epochs.len(), 1);
            assert!(r.train_s_per_epoch > 0.0);
            assert!((0.0..=1.0).contains(&r.test_ap), "{fw:?}: {}", r.test_ap);
        }
    }

    #[test]
    fn tiny_experiment_runs_all_models() {
        for mk in ModelKind::all() {
            let r = run_experiment(&tiny_cfg(Framework::TgLite, mk));
            // CPU-time clocks have 10ms granularity; a tiny JODIE test
            // pass can legitimately measure 0.
            assert!(r.test_s >= 0.0 && r.test_s.is_finite(), "{mk:?}");
            assert!(r.peak_device_bytes > 0, "{mk:?} never touched the device");
        }
    }

    #[test]
    fn host_resident_meters_transfers() {
        let mut cfg = tiny_cfg(Framework::Tgl, ModelKind::Tgat);
        cfg.placement = Placement::HostResident;
        // Use a free transfer model so the test is fast: metering still
        // counts bytes.
        let before = tgl_device::stats().h2d_bytes;
        let _ = run_experiment(&cfg);
        let after = tgl_device::stats().h2d_bytes;
        assert!(after > before, "host-resident run must transfer");
    }
}
