//! Training/evaluation harness for the TGLite reproduction.
//!
//! Provides the pieces the paper's evaluation (§5) is built from:
//!
//! * [`metrics::average_precision`] — the AP score reported in every
//!   accuracy table;
//! * [`Trainer`] — epoch loop with chronological batching, negative
//!   sampling, BCE loss, Adam, and per-epoch timing;
//! * [`runner`] — experiment configuration (framework × model ×
//!   dataset × data placement) and a single entry point that returns
//!   the timing/accuracy numbers each table/figure needs;
//! * [`table`] — fixed-width text rendering for paper-style tables;
//! * [`health`] — training-health monitor: NaN/Inf sentinels with a
//!   configurable policy (`TGL_HEALTH=off|warn|fail`) and per-epoch
//!   gradient-norm / update-ratio / loss-trend gauges;
//! * [`profrep`] — roofline-annotated rendering of the op-level
//!   profiler (`tgl_obs::profile`): top-k table with achieved GFLOP/s
//!   and compute- vs bandwidth-bound verdicts, plus per-phase
//!   attribution coverage;
//! * [`flightdump`] — flight-recorder dump policy: a std panic hook
//!   ([`install_flight_hook`]) plus explicit dumps on health-fail
//!   trips, writing `flight-<ts>.json` post-mortems to
//!   `TGL_FLIGHT_DIR`.

pub mod flightdump;
pub mod health;
pub mod logging;
pub mod metrics;
pub mod profrep;
pub mod report;
pub mod runner;
pub mod table;
mod trainer;

pub use runner::{run_experiment, run_experiment_with_capacity, ExperimentConfig, ExperimentResult, Framework, ModelKind, Placement};
pub use flightdump::install_flight_hook;
pub use health::{grad_norm, EpochHealth, HealthMonitor, HealthPolicy};
pub use logging::MetricLog;
pub use report::{EpochReport, HealthSection, RunReport, RunReporter};
pub use trainer::{process_cpu_seconds, CpuTimer, EpochStats, TrainConfig, Trainer};
