//! Evaluation metrics.

/// Average precision (AP) of positive scores against negative scores —
/// the accuracy metric of every table in the paper.
///
/// Computed as the area under the precision-recall curve by sweeping a
/// descending-score threshold: `AP = Σ_k precision@k · Δrecall@k`,
/// summing at each positive hit. Ties are broken pessimistically
/// (negatives first), so an uninformative scorer cannot look good by
/// accident.
///
/// Returns a value in `[0, 1]`; 0.5 ≈ random for balanced inputs.
///
/// # Panics
///
/// Panics if both slices are empty.
///
/// # Examples
///
/// ```
/// use tgl_harness::metrics::average_precision;
///
/// // Perfect separation.
/// assert_eq!(average_precision(&[2.0, 3.0], &[-1.0, 0.0]), 1.0);
/// ```
pub fn average_precision(pos: &[f32], neg: &[f32]) -> f64 {
    assert!(
        !pos.is_empty() || !neg.is_empty(),
        "average_precision of empty inputs"
    );
    if pos.is_empty() {
        return 0.0;
    }
    let mut scored: Vec<(f32, bool)> = pos
        .iter()
        .map(|&s| (s, true))
        .chain(neg.iter().map(|&s| (s, false)))
        .collect();
    // Descending score; ties put negatives first (pessimistic). Total
    // order so non-finite scores rank deterministically instead of
    // panicking — the health monitor, not this metric, decides what a
    // poisoned evaluation means.
    scored.sort_by(|a, b| match b.0.total_cmp(&a.0) {
        std::cmp::Ordering::Equal => a.1.cmp(&b.1),
        o => o,
    });
    let total_pos = pos.len() as f64;
    let mut tp = 0.0f64;
    let mut ap = 0.0f64;
    for (k, &(_, is_pos)) in scored.iter().enumerate() {
        if is_pos {
            tp += 1.0;
            let precision = tp / (k as f64 + 1.0);
            ap += precision / total_pos;
        }
    }
    ap
}

/// Binary classification accuracy at a 0-logit threshold.
pub fn accuracy(pos: &[f32], neg: &[f32]) -> f64 {
    let correct = pos.iter().filter(|&&s| s > 0.0).count()
        + neg.iter().filter(|&&s| s <= 0.0).count();
    correct as f64 / (pos.len() + neg.len()).max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        assert_eq!(average_precision(&[5.0, 4.0], &[1.0, 0.0]), 1.0);
    }

    #[test]
    fn inverted_scores_are_poor() {
        let ap = average_precision(&[0.0, 1.0], &[5.0, 4.0]);
        assert!(ap < 0.6, "got {ap}");
    }

    #[test]
    fn random_scores_near_half() {
        use tgl_runtime::rng::{Rng, SeedableRng, StdRng};
        let mut rng = StdRng::seed_from_u64(0);
        let pos: Vec<f32> = (0..2000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let neg: Vec<f32> = (0..2000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ap = average_precision(&pos, &neg);
        assert!((ap - 0.5).abs() < 0.05, "got {ap}");
    }

    #[test]
    fn ties_are_pessimistic() {
        // All equal scores: AP should not be 1.
        let ap = average_precision(&[1.0, 1.0], &[1.0, 1.0]);
        assert!(ap < 0.8, "got {ap}");
    }

    #[test]
    fn single_positive_ranked_first() {
        assert_eq!(average_precision(&[9.0], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn single_positive_ranked_last() {
        let ap = average_precision(&[0.0], &[1.0, 2.0, 3.0]);
        assert!((ap - 0.25).abs() < 1e-9);
    }

    #[test]
    fn known_interleaved_case() {
        // Order: p(4) n(3) p(2) n(1) -> AP = (1/1 + 2/3) / 2
        let ap = average_precision(&[4.0, 2.0], &[3.0, 1.0]);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_thresholds_at_zero() {
        assert_eq!(accuracy(&[1.0, -1.0], &[-2.0, 3.0]), 0.5);
        assert_eq!(accuracy(&[1.0], &[-1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_inputs_panic() {
        average_precision(&[], &[]);
    }
}
