//! Epoch-based training and inference driver.

use tgl_data::{NegativeSampler, Split};
use tgl_models::TemporalModel;
use tgl_tensor::optim::Adam;
use tgl_tensor::{bce_with_logits, no_grad, ops::cat, Tensor};
use tglite::{TBatch, TContext};

use crate::health::{HealthMonitor, HealthPolicy};
use crate::metrics::average_precision;

/// Seconds of CPU time this process has consumed (user + system,
/// all threads). Used instead of wall time for the paper-reproduction
/// measurements: shared-host CPU steal makes wall clocks noisy by
/// 2-4x across minutes, while CPU time only counts cycles actually
/// executed (including the transfer model's simulated-PCIe spins).
/// Falls back to a monotonic wall clock on non-Linux targets.
pub fn process_cpu_seconds() -> f64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
            // Fields 14 and 15 (1-indexed) after the comm field, which
            // may contain spaces — skip past the closing paren.
            if let Some(pos) = stat.rfind(')') {
                let fields: Vec<&str> = stat[pos + 2..].split_whitespace().collect();
                if fields.len() > 13 {
                    let utime: f64 = fields[11].parse().unwrap_or(0.0);
                    let stime: f64 = fields[12].parse().unwrap_or(0.0);
                    let hz = 100.0; // Linux USER_HZ
                    return (utime + stime) / hz;
                }
            }
        }
    }
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Measures elapsed process CPU seconds across a region.
pub struct CpuTimer {
    start: f64,
}

impl CpuTimer {
    /// Starts a timer.
    pub fn start() -> CpuTimer {
        CpuTimer {
            start: process_cpu_seconds(),
        }
    }

    /// CPU seconds since start.
    pub fn elapsed_s(&self) -> f64 {
        process_cpu_seconds() - self.start
    }
}

/// Training hyperparameters (paper §5.1: batch 600, 10 epochs, Adam;
/// scaled for the synthetic datasets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Edges per batch.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed for negative sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 200,
            epochs: 3,
            lr: 1e-3,
            seed: 0,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean training loss over batches.
    pub loss: f32,
    /// Wall time of the epoch's training portion, in seconds.
    pub train_time_s: f64,
    /// AP on the validation split after the epoch.
    pub val_ap: f64,
}

/// Drives training and inference of any [`TemporalModel`].
pub struct Trainer {
    cfg: TrainConfig,
    neg_lo: u32,
    neg_hi: u32,
    /// Pipeline depth: 0 runs the sequential reference loop; `d >= 1`
    /// runs a sampler stage prefetching up to `d` batches ahead of the
    /// compute stage over a bounded channel.
    pipeline: usize,
    /// Health monitor state, kept across epochs (loss trend). Behind a
    /// mutex only because `train_epoch` takes `&self`.
    health: std::sync::Mutex<HealthMonitor>,
}

impl Trainer {
    /// Creates a trainer drawing negatives from node ids
    /// `[neg_lo, neg_hi)`. The health policy comes from `TGL_HEALTH`
    /// (default warn); override with
    /// [`with_health`](Trainer::with_health). The pipeline depth comes
    /// from `TGL_PIPELINE` (default 0 = sequential); override with
    /// [`with_pipeline`](Trainer::with_pipeline).
    pub fn new(cfg: TrainConfig, neg_lo: u32, neg_hi: u32) -> Trainer {
        let pipeline = std::env::var("TGL_PIPELINE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Trainer {
            cfg,
            neg_lo,
            neg_hi,
            pipeline,
            health: std::sync::Mutex::new(HealthMonitor::new(HealthPolicy::from_env())),
        }
    }

    /// Replaces the health policy (e.g. `HealthPolicy::Fail` in CI).
    pub fn with_health(mut self, policy: HealthPolicy) -> Trainer {
        self.health = std::sync::Mutex::new(HealthMonitor::new(policy));
        self
    }

    /// Sets the pipeline depth: 0 = sequential (the bitwise
    /// reference), `d >= 1` = prefetch up to `d` batches ahead.
    pub fn with_pipeline(mut self, depth: usize) -> Trainer {
        self.pipeline = depth;
        self
    }

    /// The configured pipeline depth.
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.cfg.batch_size
    }

    /// Runs one training epoch over `split.train`, then evaluates AP on
    /// `split.val`. Memory state is reset at the epoch start and flows
    /// chronologically train → val.
    ///
    /// With a pipeline depth of `d >= 1` (see
    /// [`with_pipeline`](Trainer::with_pipeline)), a sampler stage on
    /// its own thread prefetches up to `d` batches ahead — negative
    /// draws, neighbor sampling/dedup, and pinned transfer staging via
    /// [`tglite::plan`] — over a bounded channel while this thread
    /// runs forward/backward/opt. All parameter and cache mutation
    /// stays on this thread in batch order, and the prefetched work is
    /// parameter-independent, so losses are bitwise identical to the
    /// sequential path at any depth and thread count.
    pub fn train_epoch<M: TemporalModel + ?Sized>(
        &self,
        model: &mut M,
        ctx: &TContext,
        split: &Split,
        opt: &mut Adam,
        epoch: usize,
    ) -> EpochStats {
        model.reset_state(ctx);
        model.set_training(true);
        let mut negs = NegativeSampler::new(
            self.neg_lo,
            self.neg_hi,
            self.cfg.seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9),
        );
        let g = ctx.graph().clone();
        let params = model.parameters();
        let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
        health.begin_epoch(&params);
        tgl_obs::gauge!("pipeline.depth").set(self.pipeline as f64);
        let start = CpuTimer::start();
        // Container region (traced + flight recorder only, no phase
        // accumulation): gives the critical-path analyzer the
        // epoch/step structure without perturbing the Fig-7 breakdown.
        let _epoch_region = tgl_obs::region("epoch");
        let mut total_loss = 0.0f64;
        let mut batches = 0usize;
        let mut seen = 0usize;
        if self.pipeline == 0 {
            for range in Split::batches(&split.train, self.cfg.batch_size) {
                {
                    let _step = tgl_obs::histogram!("step.latency_ns").timer();
                    let _step_region = tgl_obs::region("step");
                    tgl_obs::insight::begin_batch();
                    let mut batch = TBatch::new(g.clone(), range);
                    batch.set_negatives(negs.draw(batch.len()));
                    if let Some(loss) =
                        Self::train_step(model, ctx, opt, &mut health, epoch, seen, &batch)
                    {
                        total_loss += loss;
                        batches += 1;
                    }
                    seen += 1;
                }
                tgl_obs::insight::flush_step();
                Self::step_telemetry(&mut health);
            }
        } else {
            let spec = model.sampling_spec();
            let ranges: Vec<std::ops::Range<usize>> =
                Split::batches(&split.train, self.cfg.batch_size).collect();
            let (tx, rx) = tgl_runtime::channel::bounded::<TBatch>(self.pipeline);
            std::thread::scope(|scope| {
                // Moved into this closure so a compute-stage panic
                // drops the receiver during unwind, waking a sampler
                // blocked on the full queue before the scope joins it.
                let rx = rx;
                let g_sampler = g.clone();
                scope.spawn(move || {
                    let mut negs = negs;
                    for range in ranges {
                        let prefetch = tgl_obs::region("prefetch");
                        // Insight observations made while building this
                        // batch (negative draw, plan dedup/sampling)
                        // collect into a bag that travels with the
                        // batch to the compute thread, so flush order —
                        // and every derived series — is batch order at
                        // any pipeline depth.
                        tgl_obs::insight::begin_batch();
                        let mut batch = TBatch::new(g_sampler.clone(), range);
                        batch.set_negatives(negs.draw(batch.len()));
                        if let Some(spec) = &spec {
                            let plan = tglite::plan::build_plan(ctx, &batch, spec);
                            batch.set_plan(std::sync::Arc::new(plan));
                        }
                        batch.set_insight(tgl_obs::insight::take_batch());
                        drop(prefetch);
                        tgl_obs::histogram!("pipeline.queue.occupancy").record(tx.len() as u64);
                        let _wait = tgl_obs::histogram!("pipeline.queue.send_wait_ns").timer();
                        if tx.send(batch).is_err() {
                            // The compute stage died (panic); stop
                            // prefetching so its unwind can proceed.
                            break;
                        }
                    }
                });
                loop {
                    let mut batch = {
                        let _wait = tgl_obs::histogram!("pipeline.queue.recv_wait_ns").timer();
                        match rx.recv() {
                            Ok(b) => b,
                            Err(_) => break, // closed + drained
                        }
                    };
                    {
                        let _step = tgl_obs::histogram!("step.latency_ns").timer();
                        let _step_region = tgl_obs::region("step");
                        tgl_obs::insight::install_batch(batch.take_insight());
                        if let Some(loss) =
                            Self::train_step(model, ctx, opt, &mut health, epoch, seen, &batch)
                        {
                            total_loss += loss;
                            batches += 1;
                        }
                        seen += 1;
                    }
                    tgl_obs::insight::flush_step();
                    Self::step_telemetry(&mut health);
                }
            });
        }
        let train_time_s = start.elapsed_s();
        let mean_loss = total_loss / batches.max(1) as f64;
        health.end_epoch(epoch, &params, mean_loss);
        drop(health);
        let (val_ap, _) = self.evaluate(model, ctx, split.val.clone());
        // Epoch-granularity series + one more sampling/alert pass so
        // rules on `val.ap` (and end-of-epoch gauges) evaluate without
        // waiting for the next epoch's first step.
        if tgl_obs::timeseries::enabled() {
            tgl_obs::timeseries::record("val.ap", val_ap);
            let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
            Self::step_telemetry(&mut health);
        }
        EpochStats {
            loss: mean_loss as f32,
            train_time_s,
            val_ap,
        }
    }

    /// Per-step telemetry hook: one time-series sampling pass plus an
    /// alert-rule evaluation, with transitions routed through the
    /// health policy. Runs on the compute thread after every step in
    /// both trainer paths, so the sampling cadence — and therefore the
    /// alert firing sequence — is a pure function of step count,
    /// independent of thread count and pipeline depth. One relaxed
    /// load when the time-series store is disabled (the default).
    fn step_telemetry(health: &mut HealthMonitor) {
        if !tgl_obs::timeseries::enabled() {
            return;
        }
        tgl_obs::timeseries::sample_tick();
        let fired = tgl_obs::alert::evaluate();
        if !fired.is_empty() {
            health.route_alerts(&fired);
        }
    }

    /// One compute-stage step: forward, loss, health check, backward,
    /// optimizer update, cache invalidation. Shared verbatim by the
    /// sequential and pipelined paths so both run the identical
    /// floating-point sequence; all parameter and cache mutation
    /// happens here, on the calling (compute) thread, in batch order.
    ///
    /// Returns the loss when the step applied, or `None` when the
    /// health monitor skipped a poisoned batch.
    fn train_step<M: TemporalModel + ?Sized>(
        model: &mut M,
        ctx: &TContext,
        opt: &mut Adam,
        health: &mut HealthMonitor,
        epoch: usize,
        step_idx: usize,
        batch: &TBatch,
    ) -> Option<f64> {
        opt.zero_grad();
        let loss = {
            let _fwd = tgl_obs::region("forward");
            let (pos, neg) = model.forward(ctx, batch);
            link_loss(&pos, &neg)
        };
        let loss_v = loss.item();
        // The raw per-step loss — NaN included — lands in the
        // time-series *before* the health check, so SLO rules see the
        // poisoned point even when the batch below is skipped.
        tgl_obs::timeseries::record("train.loss", f64::from(loss_v));
        if !health.check_loss(epoch, step_idx, loss_v) {
            // Poisoned batch: backpropagating a non-finite loss would
            // corrupt the parameters. Skip it (the event is already
            // recorded) but still drop stale caches. Queued prefetched
            // batches stay valid — their plans never depend on the
            // parameters this skip protects.
            ctx.clear_caches();
            return None;
        }
        {
            let _b = tglite::prof::scope("backward");
            loss.backward();
        }
        // Per-parameter-group introspection: gradient norms are read
        // after backward, pre-step values snapshotted so the update
        // ratio can be measured across this optimizer step. All on the
        // compute thread in batch order — series stay thread-count- and
        // pipeline-depth-invariant.
        let insight_pre = if tgl_obs::insight::active() {
            Some(
                model
                    .param_groups()
                    .into_iter()
                    .map(|(name, ps)| {
                        let gn = crate::health::grad_norm(&ps);
                        let before: Vec<Vec<f32>> = ps.iter().map(Tensor::to_vec).collect();
                        (name, gn, before, ps)
                    })
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };
        {
            let _o = tglite::prof::scope("opt_step");
            opt.step();
        }
        if let Some(groups) = insight_pre {
            for (name, gn, before, ps) in groups {
                let (mut post_sq, mut pre_sq, mut delta_sq) = (0.0f64, 0.0f64, 0.0f64);
                for (p, b) in ps.iter().zip(&before) {
                    let now = p.to_vec();
                    for (&a, &b) in now.iter().zip(b.iter()) {
                        let (a, b) = (f64::from(a), f64::from(b));
                        post_sq += a * a;
                        pre_sq += b * b;
                        delta_sq += (a - b) * (a - b);
                    }
                }
                // Same convention as HealthMonitor::end_epoch: the
                // ratio's denominator is the *pre-step* norm, so a
                // pathological step reads as a huge ratio instead of
                // normalizing itself away.
                let ur = delta_sq.sqrt() / pre_sq.sqrt().max(1e-12);
                tgl_obs::insight::record_group(&name, gn, post_sq.sqrt(), ur);
            }
        }
        if tgl_obs::timeseries::enabled() {
            health.record_step_gauges(&model.parameters());
        }
        // Parameter updates invalidate memoized embeddings.
        ctx.clear_caches();
        Some(loss_v as f64)
    }

    /// Runs inference over an edge range, returning `(AP, seconds)`.
    /// Memory-based models keep advancing their state (the standard
    /// chronological evaluation protocol). The pipelined trainer
    /// shares this path unchanged: evaluation mutates the context's
    /// embedding caches, so it always runs sequentially on the compute
    /// thread.
    pub fn evaluate<M: TemporalModel + ?Sized>(
        &self,
        model: &mut M,
        ctx: &TContext,
        range: std::ops::Range<usize>,
    ) -> (f64, f64) {
        model.set_training(false);
        let mut negs = NegativeSampler::new(self.neg_lo, self.neg_hi, self.cfg.seed ^ 0xE7A1_5EED);
        let g = ctx.graph().clone();
        let start = CpuTimer::start();
        // One positive and one negative score per edge in the range.
        let mut all_pos: Vec<f32> = Vec::with_capacity(range.len());
        let mut all_neg: Vec<f32> = Vec::with_capacity(range.len());
        {
            let _eval_region = tgl_obs::region("eval");
            let _guard = no_grad();
            for r in Split::batches(&range, self.cfg.batch_size) {
                let mut batch = TBatch::new(g.clone(), r);
                batch.set_negatives(negs.draw(batch.len()));
                let (pos, neg) = model.forward(ctx, &batch);
                all_pos.extend(pos.to_vec());
                all_neg.extend(neg.to_vec());
            }
        }
        let secs = start.elapsed_s();
        model.set_training(true);
        if all_pos.is_empty() {
            return (0.0, secs);
        }
        // A poisoned model produces non-finite scores; an AP over those
        // is noise, so report 0 and leave a structured event behind.
        let mut health = self.health.lock().unwrap_or_else(|e| e.into_inner());
        let finite = health.check_scores(&all_pos) & health.check_scores(&all_neg);
        drop(health);
        if !finite {
            return (0.0, secs);
        }
        (average_precision(&all_pos, &all_neg), secs)
    }

    /// Best-epoch protocol with early stopping: trains up to
    /// `max_epochs`, checkpointing parameters whenever validation AP
    /// improves, stopping after `patience` epochs without improvement,
    /// and restoring the best checkpoint before test inference — the
    /// workflow of TGL's training scripts.
    ///
    /// Returns `(epoch_stats, best_val_ap, test_ap, test_seconds)`.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint file cannot be written or read.
    pub fn run_early_stopping<M: TemporalModel + ?Sized>(
        &self,
        model: &mut M,
        ctx: &TContext,
        split: &Split,
        max_epochs: usize,
        patience: usize,
    ) -> (Vec<EpochStats>, f64, f64, f64) {
        let mut opt = Adam::new(model.parameters(), self.cfg.lr);
        let dir = std::env::temp_dir().join("tgl-harness-best");
        std::fs::create_dir_all(&dir).expect("checkpoint dir");
        let ckpt = dir.join(format!("best-{}-{}.tglt", std::process::id(), self.cfg.seed));
        let mut stats = Vec::new();
        let mut best_val = f64::NEG_INFINITY;
        let mut since_best = 0usize;
        for e in 0..max_epochs {
            let s = self.train_epoch(model, ctx, split, &mut opt, e);
            stats.push(s);
            if s.val_ap > best_val {
                best_val = s.val_ap;
                since_best = 0;
                tgl_tensor::save_params(&model.parameters(), &ckpt).expect("save best");
            } else {
                since_best += 1;
                if since_best >= patience {
                    break;
                }
            }
        }
        if ckpt.exists() {
            tgl_tensor::load_params(&model.parameters(), &ckpt).expect("restore best");
            ctx.clear_caches();
            std::fs::remove_file(&ckpt).ok();
        }
        let (test_ap, test_s) = self.evaluate(model, ctx, split.test.clone());
        (stats, best_val.max(0.0), test_ap, test_s)
    }

    /// Full protocol: `epochs` training epochs (tracking the best
    /// validation AP), then test inference. Returns
    /// `(epoch_stats, best_val_ap, test_ap, test_seconds)`.
    pub fn run<M: TemporalModel + ?Sized>(
        &self,
        model: &mut M,
        ctx: &TContext,
        split: &Split,
    ) -> (Vec<EpochStats>, f64, f64, f64) {
        let mut opt = Adam::new(model.parameters(), self.cfg.lr);
        let mut stats = Vec::with_capacity(self.cfg.epochs);
        let mut best_val = 0.0f64;
        for e in 0..self.cfg.epochs {
            let s = self.train_epoch(model, ctx, split, &mut opt, e);
            best_val = best_val.max(s.val_ap);
            stats.push(s);
        }
        let (test_ap, test_s) = self.evaluate(model, ctx, split.test.clone());
        (stats, best_val, test_ap, test_s)
    }
}

/// BCE-with-logits over stacked positive/negative logits.
fn link_loss(pos: &Tensor, neg: &Tensor) -> Tensor {
    let n_pos = pos.dim(0);
    let n_neg = neg.dim(0);
    let logits = cat(&[pos.clone(), neg.clone()], 0);
    let mut targets = vec![1.0f32; n_pos];
    targets.extend(vec![0.0; n_neg]);
    bce_with_logits(&logits, &Tensor::from_vec_on(targets, [n_pos + n_neg], logits.device()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tgl_data::{generate, DatasetKind, DatasetSpec};
    use tgl_models::{ModelConfig, OptFlags, Tgat};

    fn tiny_setup() -> (TContext, Split, DatasetSpec) {
        let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(20);
        let (g, _) = generate(&spec);
        let split = Split::standard(&g);
        (TContext::new(Arc::clone(&g)), split, spec)
    }

    #[test]
    fn link_loss_matches_manual() {
        let pos = Tensor::from_vec(vec![2.0], [1]);
        let neg = Tensor::from_vec(vec![-2.0], [1]);
        let l = link_loss(&pos, &neg).item();
        // both confidently correct: small loss
        assert!(l < 0.2, "got {l}");
    }

    #[test]
    fn train_epoch_returns_finite_stats() {
        let (ctx, split, spec) = tiny_setup();
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 0);
        let trainer = Trainer::new(
            TrainConfig {
                batch_size: 50,
                epochs: 1,
                lr: 1e-3,
                seed: 0,
            },
            spec.n_src as u32,
            spec.num_nodes() as u32,
        );
        let mut opt = Adam::new(model.parameters(), 1e-3);
        let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
        assert!(stats.loss.is_finite());
        assert!(stats.train_time_s > 0.0);
        assert!((0.0..=1.0).contains(&stats.val_ap));
    }

    #[test]
    fn pipelined_epoch_matches_sequential_bitwise() {
        let run = |depth: usize| -> Vec<(u32, u64)> {
            let (ctx, split, spec) = tiny_setup();
            let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 3);
            let trainer = Trainer::new(
                TrainConfig {
                    batch_size: 50,
                    epochs: 2,
                    lr: 1e-3,
                    seed: 7,
                },
                spec.n_src as u32,
                spec.num_nodes() as u32,
            )
            .with_pipeline(depth);
            let mut opt = Adam::new(model.parameters(), 1e-3);
            (0..2)
                .map(|e| {
                    let s = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, e);
                    (s.loss.to_bits(), s.val_ap.to_bits())
                })
                .collect()
        };
        let sequential = run(0);
        for depth in [1, 3] {
            assert_eq!(
                sequential,
                run(depth),
                "pipeline depth {depth} diverged from the sequential reference"
            );
        }
    }

    #[test]
    fn early_stopping_restores_best_epoch() {
        let (ctx, split, spec) = tiny_setup();
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 4);
        let trainer = Trainer::new(
            TrainConfig {
                batch_size: 50,
                epochs: 0,
                lr: 2e-3,
                seed: 11,
            },
            spec.n_src as u32,
            spec.num_nodes() as u32,
        );
        let (stats, best_val, test_ap, _) =
            trainer.run_early_stopping(&mut model, &ctx, &split, 4, 2);
        assert!(!stats.is_empty());
        assert!(stats.len() <= 4);
        assert!((0.0..=1.0).contains(&best_val));
        assert!((0.0..=1.0).contains(&test_ap));
        // The reported best is the max of epoch vals.
        let max_epoch = stats.iter().map(|s| s.val_ap).fold(0.0, f64::max);
        assert!((best_val - max_epoch).abs() < 1e-12);
    }

    #[test]
    fn full_run_learns_above_random() {
        let (ctx, split, spec) = tiny_setup();
        let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::none(), 1);
        let trainer = Trainer::new(
            TrainConfig {
                batch_size: 50,
                epochs: 3,
                lr: 2e-3,
                seed: 0,
            },
            spec.n_src as u32,
            spec.num_nodes() as u32,
        );
        let (stats, best_val, test_ap, test_s) = trainer.run(&mut model, &ctx, &split);
        assert_eq!(stats.len(), 3);
        assert!(test_s > 0.0);
        assert!(
            best_val > 0.55 || test_ap > 0.55,
            "model failed to beat random: val {best_val:.3}, test {test_ap:.3}"
        );
    }
}
