//! Flight-recorder dump policy for training runs.
//!
//! The recorder itself lives in `tgl_obs::flight`; this module decides
//! *when* a dump hits disk: on panic (via a std panic hook installed
//! once by [`install_flight_hook`]), on a `TGL_HEALTH=fail` trip (the
//! health monitor calls [`dump`] just before panicking), or wherever a
//! driver wants one. Dumps land in `TGL_FLIGHT_DIR` (default: the
//! current directory) as `flight-<unix_ms>.json`.

use std::path::PathBuf;
use std::sync::Once;

/// Directory flight dumps are written to: `TGL_FLIGHT_DIR` when set,
/// otherwise the process working directory.
pub fn flight_dir() -> PathBuf {
    match std::env::var_os("TGL_FLIGHT_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("."),
    }
}

/// Writes a flight dump now (no-op returning `None` when the recorder
/// is disabled or the write fails — a post-mortem must never turn into
/// a second failure). Logs the dump path to stderr on success.
pub fn dump(reason: &str) -> Option<PathBuf> {
    if !tgl_obs::flight::enabled() {
        return None;
    }
    match tgl_obs::flight::dump_to_dir(&flight_dir(), reason) {
        Ok(path) => {
            eprintln!("flight recorder: dumped {} ({reason})", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("flight recorder: dump failed: {err}");
            None
        }
    }
}

/// Installs a std panic hook (once per process) that writes a flight
/// dump before delegating to the previous hook, so any panic — a
/// kernel bug, an assert, a health trip — leaves the last moments of
/// execution on disk. Skips the dump when one was already written in
/// the last second (the health monitor dumps explicitly before its
/// policy panic).
pub fn install_flight_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if tgl_obs::flight::enabled() && !tgl_obs::flight::recently_dumped(1_000) {
                dump("panic");
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flight_dir_defaults_to_cwd() {
        // Not asserting against the env var itself (other tests may
        // set it); just that the fallback is the current directory.
        if std::env::var_os("TGL_FLIGHT_DIR").is_none() {
            assert_eq!(flight_dir(), PathBuf::from("."));
        }
    }

    #[test]
    fn install_is_idempotent() {
        install_flight_hook();
        install_flight_hook();
    }
}
