//! Training-health monitor: NaN/Inf sentinels and per-epoch gauges.
//!
//! Numeric blow-ups in temporal GNN training (exploding attention
//! logits, memory-state drift) used to surface as hard `is_finite`
//! panics deep in the epoch loop. The monitor converts them into
//! structured [`tgl_obs::health`] events and lets a [`HealthPolicy`]
//! decide what happens next:
//!
//! * [`HealthPolicy::Warn`] (default) — record a `warn` event, skip the
//!   poisoned batch (its gradients would corrupt the parameters), and
//!   keep training;
//! * [`HealthPolicy::Fail`] — record a `fail` event, then panic so CI
//!   stops at the first corruption;
//! * [`HealthPolicy::Off`] — legacy behavior: no checks, non-finite
//!   losses propagate.
//!
//! Per epoch the monitor also publishes training-dynamics gauges —
//! `health.grad_norm` (L2 norm of the last batch's gradients),
//! `health.update_ratio` (‖θ_end − θ_start‖ / ‖θ_start‖, the classic
//! "is the learning rate sane" diagnostic: healthy runs sit around
//! 1e-3), `health.loss` and `health.loss_trend` (relative change vs the
//! previous epoch; negative = improving) — which the `/metrics`
//! endpoint exposes live and the v2 run report records.

use tgl_obs::health::{self, Level};
use tgl_tensor::Tensor;

/// What the trainer does when a health check trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthPolicy {
    /// No checks; non-finite values propagate (pre-monitor behavior).
    Off,
    /// Record a `warn` event and skip the poisoned batch.
    #[default]
    Warn,
    /// Record a `fail` event, then panic.
    Fail,
}

impl HealthPolicy {
    /// Parses a policy name (`off` / `warn` / `fail`).
    pub fn parse(s: &str) -> Option<HealthPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(HealthPolicy::Off),
            "warn" => Some(HealthPolicy::Warn),
            "fail" => Some(HealthPolicy::Fail),
            _ => None,
        }
    }

    /// Policy from `TGL_HEALTH` (default [`HealthPolicy::Warn`];
    /// unrecognized values also fall back to `Warn`).
    pub fn from_env() -> HealthPolicy {
        std::env::var("TGL_HEALTH")
            .ok()
            .and_then(|v| HealthPolicy::parse(&v))
            .unwrap_or_default()
    }

    /// Lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthPolicy::Off => "off",
            HealthPolicy::Warn => "warn",
            HealthPolicy::Fail => "fail",
        }
    }

    fn event_level(self) -> Level {
        if self == HealthPolicy::Fail {
            Level::Fail
        } else {
            Level::Warn
        }
    }
}

/// L2 norm of all gradients currently attached to `params`
/// (parameters without a gradient contribute 0).
pub fn grad_norm(params: &[Tensor]) -> f64 {
    let mut sq = 0.0f64;
    for p in params {
        p.with_grad(|g| {
            if let Some(g) = g {
                sq += g.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
            }
        });
    }
    sq.sqrt()
}

/// One epoch's training-dynamics summary, as published to the
/// `health.*` gauges by [`HealthMonitor::end_epoch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochHealth {
    /// L2 norm of the last batch's gradients.
    pub grad_norm: f64,
    /// ‖θ_end − θ_start‖ / ‖θ_start‖ over the epoch.
    pub update_ratio: f64,
    /// Mean training loss.
    pub loss: f64,
    /// Relative loss change vs the previous epoch (negative =
    /// improving; 0 on the first epoch).
    pub loss_trend: f64,
}

/// Per-run health state: owns the epoch-start parameter snapshot and
/// the previous epoch's loss for trend computation. One instance lives
/// inside the [`Trainer`](crate::Trainer) across epochs.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    start_params: Vec<Vec<f32>>,
    prev_loss: Option<f64>,
}

impl HealthMonitor {
    /// A monitor applying `policy`.
    pub fn new(policy: HealthPolicy) -> HealthMonitor {
        HealthMonitor {
            policy,
            start_params: Vec::new(),
            prev_loss: None,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Snapshots parameters at the epoch start so
    /// [`end_epoch`](HealthMonitor::end_epoch) can compute the
    /// parameter-update ratio. No-op (and no copy) under
    /// [`HealthPolicy::Off`].
    pub fn begin_epoch(&mut self, params: &[Tensor]) {
        if self.policy == HealthPolicy::Off {
            return;
        }
        self.start_params = params.iter().map(Tensor::to_vec).collect();
    }

    /// Checks one batch's loss. Returns `true` when the batch should
    /// proceed to backward/step; `false` means the loss was non-finite
    /// and the batch must be skipped (a `warn` event was recorded).
    ///
    /// # Panics
    ///
    /// Panics under [`HealthPolicy::Fail`] after recording the event.
    pub fn check_loss(&mut self, epoch: usize, batch: usize, loss: f32) -> bool {
        if self.policy == HealthPolicy::Off || loss.is_finite() {
            return true;
        }
        tgl_obs::counter!("health.nonfinite_loss").incr();
        let msg = format!("non-finite loss {loss} at epoch {epoch} batch {batch}");
        health::record(self.policy.event_level(), "trainer.loss", msg.clone());
        if self.policy == HealthPolicy::Fail {
            // Post-mortem before the policy panic; the panic hook's
            // recently-dumped check avoids writing a second dump.
            crate::flightdump::dump("health-fail");
            panic!("health: {msg} (TGL_HEALTH=fail)");
        }
        false
    }

    /// Checks a batch of evaluation scores. Returns `true` when every
    /// score is finite; otherwise records a `trainer.eval` event and
    /// advances `health.nonfinite_scores` — an AP over poisoned scores
    /// is meaningless and the caller should report 0 instead.
    ///
    /// # Panics
    ///
    /// Panics under [`HealthPolicy::Fail`] after recording the event.
    pub fn check_scores(&mut self, scores: &[f32]) -> bool {
        if self.policy == HealthPolicy::Off {
            return true;
        }
        let bad = scores.iter().filter(|v| !v.is_finite()).count();
        if bad == 0 {
            return true;
        }
        tgl_obs::counter!("health.nonfinite_scores").add(bad as u64);
        let msg = format!("{bad} of {} evaluation scores non-finite", scores.len());
        health::record(self.policy.event_level(), "trainer.eval", msg.clone());
        if self.policy == HealthPolicy::Fail {
            // Post-mortem before the policy panic; the panic hook's
            // recently-dumped check avoids writing a second dump.
            crate::flightdump::dump("health-fail");
            panic!("health: {msg} (TGL_HEALTH=fail)");
        }
        false
    }

    /// Routes alert-engine transitions through the policy. The alert
    /// engine already recorded each transition as a health event (and
    /// mirrored it into the flight recorder); this decides whether the
    /// run continues: under [`HealthPolicy::Fail`] a newly *fired*
    /// fail-severity alert dumps the flight recorder and panics, same
    /// as a tripped NaN sentinel. Resolves and lower severities never
    /// stop a run.
    ///
    /// # Panics
    ///
    /// Panics under [`HealthPolicy::Fail`] when a fail-severity alert
    /// fires.
    pub fn route_alerts(&mut self, transitions: &[tgl_obs::alert::Firing]) {
        if self.policy == HealthPolicy::Off {
            return;
        }
        for t in transitions.iter().filter(|t| t.firing) {
            if self.policy == HealthPolicy::Fail && t.severity == Level::Fail {
                crate::flightdump::dump("alert-fail");
                panic!(
                    "health: alert {} fired on {} (value {} at idx {}) (TGL_HEALTH=fail)",
                    t.rule, t.metric, t.value, t.idx
                );
            }
        }
    }

    /// Refreshes the `health.grad_norm` and `health.update_ratio`
    /// gauges after an optimizer step — the same quantities
    /// [`end_epoch`](HealthMonitor::end_epoch) publishes once per
    /// epoch, but kept current every step so the time-series sampler
    /// records them as real per-step series that alert rules can
    /// target. The update ratio is measured against the epoch-start
    /// snapshot; it is skipped when no snapshot exists (policy
    /// [`HealthPolicy::Off`]). Callers gate on
    /// `tgl_obs::timeseries::enabled()` — this does O(params) work.
    pub fn record_step_gauges(&self, params: &[Tensor]) {
        tgl_obs::gauge!("health.grad_norm").set(grad_norm(params));
        if self.start_params.is_empty() {
            return;
        }
        let (mut start_sq, mut delta_sq) = (0.0f64, 0.0f64);
        for (p, start) in params.iter().zip(&self.start_params) {
            let now = p.to_vec();
            for (&a, &b) in now.iter().zip(start.iter()) {
                let (a, b) = (f64::from(a), f64::from(b));
                start_sq += b * b;
                delta_sq += (a - b) * (a - b);
            }
        }
        tgl_obs::gauge!("health.update_ratio").set(delta_sq.sqrt() / start_sq.sqrt().max(1e-12));
    }

    /// Closes the epoch: publishes `health.grad_norm`,
    /// `health.update_ratio`, `health.loss`, and `health.loss_trend`
    /// gauges and records events for non-finite gradients or
    /// parameters. `params` must be the same tensors passed to
    /// [`begin_epoch`](HealthMonitor::begin_epoch); gradients are those
    /// of the epoch's last completed batch. Returns the computed
    /// summary (`None` under [`HealthPolicy::Off`]).
    ///
    /// # Panics
    ///
    /// Panics under [`HealthPolicy::Fail`] when gradients or parameters
    /// went non-finite.
    pub fn end_epoch(
        &mut self,
        epoch: usize,
        params: &[Tensor],
        mean_loss: f64,
    ) -> Option<EpochHealth> {
        if self.policy == HealthPolicy::Off {
            return None;
        }
        let gn = grad_norm(params);
        tgl_obs::gauge!("health.grad_norm").set(gn);

        let (mut cur_sq, mut delta_sq, mut finite) = (0.0f64, 0.0f64, true);
        for (p, start) in params.iter().zip(&self.start_params) {
            let now = p.to_vec();
            for (&a, &b) in now.iter().zip(start.iter()) {
                finite &= a.is_finite();
                let (a, b) = (a as f64, b as f64);
                cur_sq += b * b;
                delta_sq += (a - b) * (a - b);
            }
        }
        let update_ratio = delta_sq.sqrt() / cur_sq.sqrt().max(1e-12);
        tgl_obs::gauge!("health.update_ratio").set(update_ratio);

        tgl_obs::gauge!("health.loss").set(mean_loss);
        let trend = match self.prev_loss {
            Some(prev) => (mean_loss - prev) / prev.abs().max(1e-12),
            None => 0.0,
        };
        tgl_obs::gauge!("health.loss_trend").set(trend);
        self.prev_loss = Some(mean_loss);

        if !gn.is_finite() {
            let msg = format!("non-finite gradient norm {gn} at end of epoch {epoch}");
            health::record(self.policy.event_level(), "trainer.grad", msg.clone());
            if self.policy == HealthPolicy::Fail {
                crate::flightdump::dump("health-fail");
                panic!("health: {msg} (TGL_HEALTH=fail)");
            }
        }
        if !finite {
            let msg = format!("non-finite parameters at end of epoch {epoch}");
            health::record(self.policy.event_level(), "trainer.params", msg.clone());
            if self.policy == HealthPolicy::Fail {
                crate::flightdump::dump("health-fail");
                panic!("health: {msg} (TGL_HEALTH=fail)");
            }
        }
        self.start_params.clear();
        Some(EpochHealth {
            grad_norm: gn,
            update_ratio,
            loss: mean_loss,
            loss_trend: trend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_defaults_to_warn() {
        assert_eq!(HealthPolicy::parse("off"), Some(HealthPolicy::Off));
        assert_eq!(HealthPolicy::parse("WARN"), Some(HealthPolicy::Warn));
        assert_eq!(HealthPolicy::parse("fail"), Some(HealthPolicy::Fail));
        assert_eq!(HealthPolicy::parse("bogus"), None);
        assert_eq!(HealthPolicy::default(), HealthPolicy::Warn);
        assert_eq!(HealthPolicy::Fail.label(), "fail");
    }

    #[test]
    fn finite_loss_passes_nonfinite_warns_and_skips() {
        let mut m = HealthMonitor::new(HealthPolicy::Warn);
        assert!(m.check_loss(0, 0, 0.5));
        let before = tgl_obs::health::events().len();
        assert!(!m.check_loss(0, 1, f32::NAN));
        assert!(!m.check_loss(0, 2, f32::INFINITY));
        let evs = tgl_obs::health::events();
        assert!(evs.len() >= before + 2);
        assert!(evs
            .iter()
            .any(|e| e.source == "trainer.loss" && e.level == Level::Warn));
    }

    #[test]
    fn nonfinite_scores_warn_and_invalidate() {
        let mut m = HealthMonitor::new(HealthPolicy::Warn);
        assert!(m.check_scores(&[0.1, -0.4, 2.0]));
        assert!(!m.check_scores(&[0.1, f32::NAN, f32::NEG_INFINITY]));
        assert!(tgl_obs::health::events()
            .iter()
            .any(|e| e.source == "trainer.eval"));
        // Off never looks at the values at all.
        assert!(HealthMonitor::new(HealthPolicy::Off).check_scores(&[f32::NAN]));
    }

    #[test]
    fn off_policy_checks_nothing() {
        let mut m = HealthMonitor::new(HealthPolicy::Off);
        // NaN passes through untouched and no snapshot work happens.
        assert!(m.check_loss(0, 0, f32::NAN));
        let p = Tensor::from_vec(vec![1.0], [1]);
        m.begin_epoch(std::slice::from_ref(&p));
        assert!(m.start_params.is_empty());
        assert_eq!(m.end_epoch(0, &[p], f64::NAN), None);
    }

    #[test]
    #[should_panic(expected = "non-finite loss")]
    fn fail_policy_panics_on_nonfinite_loss() {
        // The fail policy dumps the flight recorder before panicking;
        // point it at a temp dir so the test leaves no file behind.
        std::env::set_var("TGL_FLIGHT_DIR", std::env::temp_dir());
        HealthMonitor::new(HealthPolicy::Fail).check_loss(1, 2, f32::NAN);
    }

    #[test]
    fn alert_routing_respects_policy() {
        let firing = tgl_obs::alert::Firing {
            rule: "loss-divergence".into(),
            metric: "train.loss".into(),
            severity: Level::Fail,
            firing: true,
            idx: 7,
            value: f64::NAN,
        };
        // Warn logs but keeps running; Off ignores entirely; a resolve
        // never stops a run even under Fail.
        HealthMonitor::new(HealthPolicy::Warn).route_alerts(std::slice::from_ref(&firing));
        HealthMonitor::new(HealthPolicy::Off).route_alerts(std::slice::from_ref(&firing));
        let resolved = tgl_obs::alert::Firing {
            firing: false,
            ..firing.clone()
        };
        HealthMonitor::new(HealthPolicy::Fail).route_alerts(&[resolved]);
        // A warn-severity firing survives the Fail policy too.
        let warn_sev = tgl_obs::alert::Firing {
            severity: Level::Warn,
            ..firing
        };
        HealthMonitor::new(HealthPolicy::Fail).route_alerts(&[warn_sev]);
    }

    #[test]
    #[should_panic(expected = "alert loss-divergence fired")]
    fn fail_policy_panics_on_fail_severity_firing() {
        std::env::set_var("TGL_FLIGHT_DIR", std::env::temp_dir());
        let firing = tgl_obs::alert::Firing {
            rule: "loss-divergence".into(),
            metric: "train.loss".into(),
            severity: Level::Fail,
            firing: true,
            idx: 7,
            value: f64::INFINITY,
        };
        HealthMonitor::new(HealthPolicy::Fail).route_alerts(&[firing]);
    }

    #[test]
    fn end_epoch_publishes_gauges_and_trend() {
        let p = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let params = vec![p];
        let mut m = HealthMonitor::new(HealthPolicy::Warn);
        m.begin_epoch(&params);
        m.end_epoch(0, &params, 2.0).unwrap();
        m.begin_epoch(&params);
        let h = m.end_epoch(1, &params, 1.0).unwrap();
        // loss halved: trend = (1 - 2) / 2 = -0.5
        assert!((h.loss_trend + 0.5).abs() < 1e-9, "trend {}", h.loss_trend);
        assert_eq!(h.loss, 1.0);
        // Parameters unchanged within the epoch: update ratio 0.
        assert_eq!(h.update_ratio, 0.0);
        assert_eq!(h.grad_norm, 0.0);
    }

    #[test]
    fn grad_norm_of_gradless_params_is_zero() {
        let p = Tensor::from_vec(vec![3.0, 4.0], [2]);
        assert_eq!(grad_norm(&[p]), 0.0);
    }
}
