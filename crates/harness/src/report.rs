//! Machine-readable run reports.
//!
//! A [`RunReporter`] rides along a training run: per epoch it drains
//! the global phase accumulator (`tglite::prof`), diffs the global
//! counter registry and the latency histograms (`tgl_obs`), producing
//! one [`RunReport`] JSON document with the Fig. 7 phase breakdown and
//! the Table 6 redundancy counters for every epoch — the structured
//! counterpart to the [`MetricLog`](crate::MetricLog) CSV.
//!
//! Schema (`"schema": "tgl-run-report/v3"`; v1 lacked `hists`,
//! `histograms`, `gauges`, and `health`; v2 lacked `insight`):
//!
//! ```json
//! {
//!   "schema": "tgl-run-report/v3",
//!   "meta": {"model": "tgat", "dataset": "wiki", ...},
//!   "epochs": [
//!     {"epoch": 0, "loss": 0.61, "train_s": 1.9, "val_ap": 0.93,
//!      "phases_s": {"sample": 0.41, "attention": 0.62, ...},
//!      "counters": {"cache.hits": 0, "sampler.neighbors": 51200, ...},
//!      "hists": {"step.latency_ns": {"count": 12, "p50": 31e6, ...}}},
//!     ...
//!   ],
//!   "test": {"ap": 0.94, "secs": 0.7},
//!   "counters_total": {"cache.hits": 123, ...},
//!   "histograms": {"step.latency_ns": {"count": 36, "sum": 9.1e8,
//!                  "mean": 2.5e7, "p50": 2.4e7, "p90": 4.0e7,
//!                  "p99": 6.1e7, "max": 66123456}, ...},
//!   "gauges": {"health.grad_norm": 0.82, ...},
//!   "health": {"policy": "warn", "status": "ok", "loss_trend": -0.12,
//!              "dropped": 0, "events": [{"level": "warn",
//!              "source": "trainer.loss", "message": "...", "seq": 3}]},
//!   "insight": {"steps": 36, "series": [
//!     {"name": "insight.layer.layer0.w_q.grad_norm", "count": 36,
//!      "mean": 0.21, "std": 0.05, "min": 0.1, "max": 0.4,
//!      "last": 0.2}, ...]},
//!   "phases_total_s": {"sample": 1.21, "attention": 1.88, ...},
//!   "profile": [{"op": "matmul", "phase": "attention", "calls": 96,
//!                "self_ns": 1.2e9, "flops": 8.1e9, ...}, ...],
//!   "critpath": {"wall_s": 2.1, "critical_s": 1.9, "wait_s": 0.2,
//!                "overlap_efficiency": 1.4,
//!                "stages": [{"stage": "sample", "serial_s": 0.4,
//!                            "exclusive_s": 0.1, "overlapped_s": 0.3,
//!                            "critical_s": 0.2, "segments": 64}, ...]}
//! }
//! ```
//!
//! `critpath` is `null` unless span tracing was enabled for the run
//! (an additive v2 key; see `tgl_obs::critpath`). `insight` (v3) is
//! `null` unless the introspection layer recorded at least one step
//! (see `tgl_obs::insight`); its `series` rows are the same summaries
//! the standalone `tgl-insight/v1` artifact carries.
//!
//! `phases_total_s` sums every epoch's phase drain plus the leftover
//! captured at finish; `profile` holds the run's per-operator totals
//! from [`tgl_obs::profile`] (empty when the op-level profiler was
//! off) in the same row shape as the standalone `tgl-profile/v1`
//! artifact.
//!
//! Per-epoch `counters`/`hists` are deltas over that epoch;
//! `counters_total`/`histograms` hold the absolute values at finish.
//! While a run is in flight the reporter also publishes the
//! report-so-far (with `"in_progress": true` and no `test` section) to
//! the live exposition endpoint, so `GET /report.json` works mid-run.

use std::collections::HashMap;
use std::path::Path;
use std::time::Duration;

use tgl_data::Json;
use tgl_obs::hist::HistSnapshot;
use tgl_obs::profile::OpStat;
use tglite::{obs, prof};

use crate::{EpochStats, HealthPolicy};

/// One epoch's measurements: trainer stats + phase durations + counter
/// deltas.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training wall/CPU seconds (as reported by the trainer).
    pub train_s: f64,
    /// Validation AP after the epoch.
    pub val_ap: f64,
    /// Per-phase seconds drained from the profiler, sorted by
    /// descending duration.
    pub phases_s: Vec<(String, f64)>,
    /// Counter increments during the epoch, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram sample deltas during the epoch (histograms with no
    /// new samples omitted), sorted by name. `max` is the lifetime
    /// maximum, not the per-epoch one (see [`HistSnapshot::diff`]).
    pub hists: Vec<(String, HistSnapshot)>,
}

/// The run report's `health` section.
#[derive(Debug, Clone)]
pub struct HealthSection {
    /// Active health policy label (`off` / `warn` / `fail`).
    pub policy: String,
    /// `"ok"`, or the worst event level seen during the run.
    pub status: String,
    /// Relative mean-loss change, last epoch vs the one before
    /// (negative = improving; 0 with fewer than two epochs).
    pub loss_trend: f64,
    /// Health events recorded during the run, in order.
    pub events: Vec<obs::health::HealthEvent>,
    /// Events that overflowed the bounded sink.
    pub dropped: u64,
}

/// A completed run's structured report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Free-form run metadata (model, dataset, seed, threads, ...).
    pub meta: Vec<(String, Json)>,
    /// Per-epoch measurements in order.
    pub epochs: Vec<EpochReport>,
    /// Test AP after training.
    pub test_ap: f64,
    /// Test inference seconds.
    pub test_s: f64,
    /// Absolute counter values at the end of the run, sorted by name.
    pub counters_total: Vec<(String, u64)>,
    /// Absolute histogram state at the end of the run (empty
    /// histograms omitted), sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Gauge values at the end of the run, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Training-health summary.
    pub health: HealthSection,
    /// Introspection-layer per-series summaries (empty unless
    /// `tgl_obs::insight` was enabled and flushed at least one step).
    pub insight: Vec<tgl_obs::insight::InsightStat>,
    /// Steps the insight layer flushed during the run.
    pub insight_steps: u64,
    /// Whole-run phase seconds: every epoch's drain plus the leftover
    /// captured at finish (test inference etc.), sorted by name.
    pub phases_total_s: Vec<(String, f64)>,
    /// Per-operator profiler totals for the run (empty unless
    /// `tgl_obs::profile` was enabled), in self-time-descending order.
    pub profile: Vec<OpStat>,
    /// Critical-path analysis over the run's tracer spans (`None`
    /// unless tracing was enabled).
    pub critpath: Option<tgl_obs::critpath::Analysis>,
}

/// The critical-path analysis as report JSON — the same shape as the
/// standalone `tgl-critpath/v1` artifact, minus the schema tag.
fn critpath_json(a: &tgl_obs::critpath::Analysis) -> Json {
    let stages = a
        .stages
        .iter()
        .map(|row| {
            Json::obj(vec![
                ("stage".into(), Json::Str(row.stage.label().into())),
                ("serial_s".into(), Json::Num(row.serial_s)),
                ("exclusive_s".into(), Json::Num(row.exclusive_s)),
                ("overlapped_s".into(), Json::Num(row.overlapped_s)),
                ("critical_s".into(), Json::Num(row.critical_s)),
                ("segments".into(), Json::Num(row.segments as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("wall_s".into(), Json::Num(a.wall_s)),
        ("busy_s".into(), Json::Num(a.busy_s)),
        ("serial_s".into(), Json::Num(a.serial_s)),
        ("critical_s".into(), Json::Num(a.critical_s)),
        ("wait_s".into(), Json::Num(a.wait_s)),
        ("overlap_efficiency".into(), Json::Num(a.overlap_efficiency)),
        ("threads".into(), Json::Num(a.threads as f64)),
        ("steps".into(), Json::Num(a.steps as f64)),
        ("spans".into(), Json::Num(a.spans as f64)),
        ("segments".into(), Json::Num(a.segments as f64)),
        ("pool_busy_ns".into(), Json::Num(a.pool_busy_ns as f64)),
        ("pool_wait_ns".into(), Json::Num(a.pool_wait_ns as f64)),
        ("stages".into(), Json::Arr(stages)),
    ])
}

/// One profiled op as report JSON — the same row shape as the
/// standalone `tgl-profile/v1` artifact.
fn op_json(s: &OpStat) -> Json {
    Json::obj(vec![
        ("op".into(), Json::Str(s.op.into())),
        ("phase".into(), Json::Str(s.phase.into())),
        ("calls".into(), Json::Num(s.calls as f64)),
        ("self_ns".into(), Json::Num(s.self_ns as f64)),
        ("total_ns".into(), Json::Num(s.total_ns as f64)),
        ("flops".into(), Json::Num(s.flops as f64)),
        ("bytes_read".into(), Json::Num(s.bytes_read as f64)),
        ("bytes_written".into(), Json::Num(s.bytes_written as f64)),
        ("pool_hits".into(), Json::Num(s.pool_hits as f64)),
        ("pool_misses".into(), Json::Num(s.pool_misses as f64)),
        ("transfer_bytes".into(), Json::Num(s.transfer_bytes as f64)),
        ("shape".into(), Json::Str(s.shape.into())),
    ])
}

/// One histogram as report JSON: counts plus interpolated quantiles.
fn hist_json(s: &HistSnapshot) -> Json {
    Json::obj(vec![
        ("count".into(), Json::Num(s.count as f64)),
        ("sum".into(), Json::Num(s.sum as f64)),
        ("mean".into(), Json::Num(s.mean())),
        ("p50".into(), Json::Num(s.quantile(0.5))),
        ("p90".into(), Json::Num(s.quantile(0.9))),
        ("p99".into(), Json::Num(s.quantile(0.99))),
        ("max".into(), Json::Num(s.max as f64)),
    ])
}

fn hists_json(hists: &[(String, HistSnapshot)]) -> Json {
    Json::Obj(hists.iter().map(|(n, s)| (n.clone(), hist_json(s))).collect())
}

fn epoch_json(e: &EpochReport) -> Json {
    Json::obj(vec![
        ("epoch".into(), Json::Num(e.epoch as f64)),
        ("loss".into(), Json::Num(e.loss as f64)),
        ("train_s".into(), Json::Num(e.train_s)),
        ("val_ap".into(), Json::Num(e.val_ap)),
        (
            "phases_s".into(),
            Json::Obj(
                e.phases_s
                    .iter()
                    .map(|(n, s)| (n.clone(), Json::Num(*s)))
                    .collect(),
            ),
        ),
        (
            "counters".into(),
            Json::Obj(
                e.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        ("hists".into(), hists_json(&e.hists)),
    ])
}

/// Finite numbers render as numbers; NaN/inf (a diverged layer's stats)
/// become `null` so the document stays valid JSON.
fn num_or_null(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

/// The `insight` section: `null` when the introspection layer never
/// flushed a step, otherwise the per-series cumulative summaries.
fn insight_json(stats: &[tgl_obs::insight::InsightStat], steps: u64) -> Json {
    if steps == 0 && stats.is_empty() {
        return Json::Null;
    }
    let series = stats
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("count".into(), Json::Num(s.count as f64)),
                ("mean".into(), num_or_null(s.mean)),
                ("std".into(), num_or_null(s.std)),
                ("min".into(), num_or_null(s.min)),
                ("max".into(), num_or_null(s.max)),
                ("last".into(), num_or_null(s.last)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("steps".into(), Json::Num(steps as f64)),
        ("series".into(), Json::Arr(series)),
    ])
}

fn health_json(h: &HealthSection) -> Json {
    let events = h
        .events
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("level".into(), Json::Str(e.level.label().into())),
                ("source".into(), Json::Str(e.source.into())),
                ("message".into(), Json::Str(e.message.clone())),
                ("seq".into(), Json::Num(e.seq as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("policy".into(), Json::Str(h.policy.clone())),
        ("status".into(), Json::Str(h.status.clone())),
        ("loss_trend".into(), Json::Num(h.loss_trend)),
        ("dropped".into(), Json::Num(h.dropped as f64)),
        ("events".into(), Json::Arr(events)),
    ])
}

impl RunReport {
    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let epochs = self.epochs.iter().map(epoch_json).collect();
        Json::obj(vec![
            ("schema".into(), Json::Str("tgl-run-report/v3".into())),
            ("meta".into(), Json::Obj(self.meta.clone())),
            ("epochs".into(), Json::Arr(epochs)),
            (
                "test".into(),
                Json::obj(vec![
                    ("ap".into(), Json::Num(self.test_ap)),
                    ("secs".into(), Json::Num(self.test_s)),
                ]),
            ),
            (
                "counters_total".into(),
                Json::Obj(
                    self.counters_total
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            ("histograms".into(), hists_json(&self.histograms)),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("health".into(), health_json(&self.health)),
            (
                "insight".into(),
                insight_json(&self.insight, self.insight_steps),
            ),
            (
                "phases_total_s".into(),
                Json::Obj(
                    self.phases_total_s
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "profile".into(),
                Json::Arr(self.profile.iter().map(op_json).collect()),
            ),
            (
                "critpath".into(),
                match &self.critpath {
                    Some(a) => critpath_json(a),
                    None => Json::Null,
                },
            ),
        ])
        .render()
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Collects per-epoch phase and counter snapshots during a run.
///
/// [`RunReporter::start`] enables the profiler and baselines the
/// counter registry; call [`record_epoch`](RunReporter::record_epoch)
/// after each training epoch and [`finish`](RunReporter::finish) after
/// test inference.
#[derive(Debug)]
pub struct RunReporter {
    meta: Vec<(String, Json)>,
    epochs: Vec<EpochReport>,
    last_counters: HashMap<String, u64>,
    last_hists: HashMap<String, HistSnapshot>,
    /// Number of health events that existed before the run: only later
    /// events belong to this report.
    health_events0: usize,
    prof_was_enabled: bool,
}

impl RunReporter {
    /// Starts reporting: enables phase profiling (restored by
    /// [`finish`](RunReporter::finish)), drains any stale phases, and
    /// baselines counters, histograms, and health events so epoch
    /// deltas start from here.
    pub fn start() -> RunReporter {
        let prof_was_enabled = prof::enabled();
        prof::enable(true);
        prof::take();
        RunReporter {
            meta: Vec::new(),
            epochs: Vec::new(),
            last_counters: snapshot_map(),
            last_hists: hist_map(),
            health_events0: obs::health::events().len(),
            prof_was_enabled,
        }
    }

    /// Attaches a metadata string (model name, dataset, ...).
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), Json::Str(value.to_string())));
    }

    /// Attaches a numeric metadata value (seed, threads, scale, ...).
    pub fn set_meta_num(&mut self, key: &str, value: f64) {
        self.meta.push((key.to_string(), Json::Num(value)));
    }

    /// Epoch reports recorded so far (most recent last).
    pub fn epochs_so_far(&self) -> &[EpochReport] {
        &self.epochs
    }

    /// Records one finished epoch: drains accumulated phases and diffs
    /// counters against the previous snapshot.
    pub fn record_epoch(&mut self, epoch: usize, stats: &EpochStats) {
        let phases_s = prof::take()
            .into_iter()
            .map(|(n, d)| (n.to_string(), d.as_secs_f64()))
            .collect();
        let now = snapshot_map();
        let mut counters: Vec<(String, u64)> = now
            .iter()
            .map(|(n, v)| {
                let before = self.last_counters.get(n).copied().unwrap_or(0);
                (n.clone(), v - before)
            })
            .collect();
        counters.sort();
        self.last_counters = now;
        let hist_now = hist_map();
        let mut hists: Vec<(String, HistSnapshot)> = hist_now
            .iter()
            .filter_map(|(n, s)| {
                let delta = s.diff(self.last_hists.get(n).unwrap_or(&HistSnapshot::default()));
                (!delta.is_empty()).then(|| (n.clone(), delta))
            })
            .collect();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        self.last_hists = hist_now;
        self.epochs.push(EpochReport {
            epoch,
            loss: stats.loss,
            train_s: stats.train_time_s,
            val_ap: stats.val_ap,
            phases_s,
            counters,
            hists,
        });
        // Make the report-so-far scrapeable mid-run: /report.json on
        // the exposition endpoint always serves the latest publish.
        obs::expo::publish_report(self.in_progress_json());
    }

    /// The report-so-far as JSON (`"in_progress": true`, no `test`
    /// section yet).
    fn in_progress_json(&self) -> String {
        let mut meta = self.meta.clone();
        meta.sort_by(|a, b| a.0.cmp(&b.0));
        Json::obj(vec![
            ("schema".into(), Json::Str("tgl-run-report/v3".into())),
            ("in_progress".into(), Json::Bool(true)),
            ("meta".into(), Json::Obj(meta)),
            ("epochs".into(), Json::Arr(self.epochs.iter().map(epoch_json).collect())),
            ("health".into(), health_json(&self.collect_health())),
            (
                "insight".into(),
                insight_json(&tgl_obs::insight::stats(), tgl_obs::insight::steps()),
            ),
        ])
        .render()
    }

    /// Builds the health section from events recorded since
    /// [`start`](RunReporter::start) and the epoch loss series.
    fn collect_health(&self) -> HealthSection {
        let all = obs::health::events();
        let events: Vec<_> = all.get(self.health_events0..).unwrap_or(&[]).to_vec();
        let status = events
            .iter()
            .map(|e| e.level)
            .max()
            .map_or("ok", |l| l.label())
            .to_string();
        let loss_trend = match self.epochs.len() {
            0 | 1 => 0.0,
            n => {
                let prev = self.epochs[n - 2].loss as f64;
                let last = self.epochs[n - 1].loss as f64;
                (last - prev) / prev.abs().max(1e-12)
            }
        };
        HealthSection {
            policy: HealthPolicy::from_env().label().to_string(),
            status,
            loss_trend,
            events,
            dropped: obs::health::dropped(),
        }
    }

    /// Finishes the run: restores the profiler's previous enable
    /// state, publishes the final report to the exposition endpoint,
    /// and returns it with final absolute counter/histogram values.
    pub fn finish(mut self, test_ap: f64, test_s: f64) -> RunReport {
        // Phases accumulated since the last epoch drain (test
        // inference, teardown) still belong to this run.
        let leftover: Vec<(&'static str, Duration)> = prof::take();
        prof::enable(self.prof_was_enabled);
        let mut phase_totals: HashMap<String, f64> = HashMap::new();
        for e in &self.epochs {
            for (n, s) in &e.phases_s {
                *phase_totals.entry(n.clone()).or_default() += s;
            }
        }
        for (n, d) in leftover {
            *phase_totals.entry(n.to_string()).or_default() += d.as_secs_f64();
        }
        let mut phases_total_s: Vec<(String, f64)> = phase_totals.into_iter().collect();
        phases_total_s.sort_by(|a, b| a.0.cmp(&b.0));
        // Drain the op profiler's run-scoped totals (empty when the
        // op-level profiler was never enabled).
        let profile = tgl_obs::profile::take();
        let mut counters_total: Vec<(String, u64)> = obs::metrics::snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        counters_total.sort();
        let mut histograms: Vec<(String, HistSnapshot)> = hist_map()
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let health = self.collect_health();
        // Critical-path section when tracing ran: analyze a
        // non-draining snapshot so the caller can still export the
        // Chrome trace afterwards.
        let critpath = tgl_obs::trace::enabled()
            .then(|| tgl_obs::critpath::analyze(&tgl_obs::trace::snapshot()));
        self.meta.sort_by(|a, b| a.0.cmp(&b.0));
        let report = RunReport {
            meta: std::mem::take(&mut self.meta),
            epochs: std::mem::take(&mut self.epochs),
            test_ap,
            test_s,
            counters_total,
            histograms,
            gauges: obs::hist::gauge_snapshot()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
            health,
            insight: tgl_obs::insight::stats(),
            insight_steps: tgl_obs::insight::steps(),
            phases_total_s,
            profile,
            critpath,
        };
        obs::expo::publish_report(report.to_json());
        report
    }
}

fn snapshot_map() -> HashMap<String, u64> {
    obs::metrics::snapshot()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
}

fn hist_map() -> HashMap<String, HistSnapshot> {
    obs::hist::hist_snapshot()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Profiler and counters are process-global; serialize tests that
    /// exercise them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stats() -> EpochStats {
        EpochStats {
            loss: 0.5,
            train_time_s: 1.25,
            val_ap: 0.9,
        }
    }

    #[test]
    fn reporter_collects_phases_and_counter_deltas() {
        let _g = serial();
        let mut rep = RunReporter::start();
        rep.set_meta("model", "tgat");
        rep.set_meta_num("seed", 42.0);
        prof::add("report-test-phase", Duration::from_millis(3));
        obs::counter!("report.test.events").add(7);
        rep.record_epoch(0, &stats());
        obs::counter!("report.test.events").add(2);
        rep.record_epoch(1, &stats());
        let report = rep.finish(0.91, 0.2);

        assert_eq!(report.epochs.len(), 2);
        let e0 = &report.epochs[0];
        assert!(e0.phases_s.iter().any(|(n, s)| n == "report-test-phase" && *s > 0.0));
        let delta = |e: &EpochReport| {
            e.counters
                .iter()
                .find(|(n, _)| n == "report.test.events")
                .map(|(_, v)| *v)
        };
        assert_eq!(delta(e0), Some(7));
        assert_eq!(delta(&report.epochs[1]), Some(2));
        let total = report
            .counters_total
            .iter()
            .find(|(n, _)| n == "report.test.events")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(total >= 9);
    }

    #[test]
    fn report_json_parses_and_has_schema() {
        let _g = serial();
        let mut rep = RunReporter::start();
        rep.set_meta("dataset", "wiki \"scaled\"");
        prof::add("report-test-json", Duration::from_millis(1));
        rep.record_epoch(0, &stats());
        let report = rep.finish(0.9, 0.1);
        let v = Json::parse(&report.to_json()).expect("report must be valid JSON");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("tgl-run-report/v3")
        );
        assert!(v.get("histograms").is_some());
        // Insight was off: the v3 section is present but null.
        assert!(v.get("insight").is_some());
        assert!(v.get("health").and_then(|h| h.get("status")).is_some());
        let epochs = v.get("epochs").and_then(Json::as_arr).unwrap();
        assert_eq!(epochs.len(), 1);
        assert!(epochs[0]
            .get("phases_s")
            .and_then(|p| p.get("report-test-json"))
            .is_some());
        assert_eq!(
            v.get("meta").and_then(|m| m.get("dataset")).and_then(Json::as_str),
            Some("wiki \"scaled\"")
        );
        assert!(v.get("test").and_then(|t| t.get("ap")).is_some());
    }

    #[test]
    fn reporter_collects_histogram_deltas_and_quantiles() {
        let _g = serial();
        let mut rep = RunReporter::start();
        obs::hist::histogram("report.test.lat_ns").record_always(1000);
        obs::hist::histogram("report.test.lat_ns").record_always(3000);
        rep.record_epoch(0, &stats());
        obs::hist::histogram("report.test.lat_ns").record_always(5000);
        rep.record_epoch(1, &stats());
        let report = rep.finish(0.9, 0.1);

        let epoch_delta = |e: &EpochReport| {
            e.hists
                .iter()
                .find(|(n, _)| n == "report.test.lat_ns")
                .map(|(_, s)| s.count)
        };
        assert_eq!(epoch_delta(&report.epochs[0]), Some(2));
        assert_eq!(epoch_delta(&report.epochs[1]), Some(1));
        let (_, total) = report
            .histograms
            .iter()
            .find(|(n, _)| n == "report.test.lat_ns")
            .expect("histogram totals present");
        assert!(total.count >= 3);
        // Quantiles appear in the rendered JSON.
        let v = Json::parse(&report.to_json()).unwrap();
        let h = v
            .get("histograms")
            .and_then(|h| h.get("report.test.lat_ns"))
            .expect("histogram in JSON");
        for key in ["count", "sum", "mean", "p50", "p90", "p99", "max"] {
            assert!(h.get(key).and_then(Json::as_num).is_some(), "missing {key}");
        }
    }

    #[test]
    fn health_events_during_run_land_in_report() {
        let _g = serial();
        let mut rep = RunReporter::start();
        obs::health::record(
            obs::health::Level::Warn,
            "report.test",
            "synthetic wobble".into(),
        );
        rep.record_epoch(0, &stats());
        let report = rep.finish(0.9, 0.1);
        assert!(report
            .health
            .events
            .iter()
            .any(|e| e.source == "report.test"));
        assert_ne!(report.health.status, "ok");
        // In-progress publication made /report.json-able JSON.
        let latest = obs::expo::latest_report().expect("report published");
        let v = Json::parse(&latest).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("tgl-run-report/v3"));
    }

    #[test]
    fn loss_trend_tracks_epoch_losses() {
        let _g = serial();
        let mut rep = RunReporter::start();
        let mk = |loss: f32| EpochStats {
            loss,
            train_time_s: 1.0,
            val_ap: 0.9,
        };
        rep.record_epoch(0, &mk(2.0));
        rep.record_epoch(1, &mk(1.0));
        let report = rep.finish(0.9, 0.1);
        assert!((report.health.loss_trend + 0.5).abs() < 1e-9);
    }

    #[test]
    fn finish_restores_profiler_state() {
        let _g = serial();
        prof::enable(false);
        let rep = RunReporter::start();
        assert!(prof::enabled());
        rep.finish(0.0, 0.0);
        assert!(!prof::enabled());
    }
}
