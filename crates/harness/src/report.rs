//! Machine-readable run reports.
//!
//! A [`RunReporter`] rides along a training run: per epoch it drains
//! the global phase accumulator (`tglite::prof`) and diffs the global
//! counter registry (`tglite::obs::metrics`), producing one
//! [`RunReport`] JSON document with the Fig. 7 phase breakdown and the
//! Table 6 redundancy counters for every epoch — the structured
//! counterpart to the [`MetricLog`](crate::MetricLog) CSV.
//!
//! Schema (`"schema": "tgl-run-report/v1"`):
//!
//! ```json
//! {
//!   "schema": "tgl-run-report/v1",
//!   "meta": {"model": "tgat", "dataset": "wiki", ...},
//!   "epochs": [
//!     {"epoch": 0, "loss": 0.61, "train_s": 1.9, "val_ap": 0.93,
//!      "phases_s": {"sample": 0.41, "attention": 0.62, ...},
//!      "counters": {"cache.hits": 0, "sampler.neighbors": 51200, ...}},
//!     ...
//!   ],
//!   "test": {"ap": 0.94, "secs": 0.7},
//!   "counters_total": {"cache.hits": 123, ...}
//! }
//! ```
//!
//! Per-epoch `counters` are deltas over that epoch; `counters_total`
//! holds the absolute values at finish.

use std::collections::HashMap;
use std::path::Path;

use tgl_data::Json;
use tglite::{obs, prof};

use crate::EpochStats;

/// One epoch's measurements: trainer stats + phase durations + counter
/// deltas.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Mean training loss.
    pub loss: f32,
    /// Training wall/CPU seconds (as reported by the trainer).
    pub train_s: f64,
    /// Validation AP after the epoch.
    pub val_ap: f64,
    /// Per-phase seconds drained from the profiler, sorted by
    /// descending duration.
    pub phases_s: Vec<(String, f64)>,
    /// Counter increments during the epoch, sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// A completed run's structured report.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Free-form run metadata (model, dataset, seed, threads, ...).
    pub meta: Vec<(String, Json)>,
    /// Per-epoch measurements in order.
    pub epochs: Vec<EpochReport>,
    /// Test AP after training.
    pub test_ap: f64,
    /// Test inference seconds.
    pub test_s: f64,
    /// Absolute counter values at the end of the run, sorted by name.
    pub counters_total: Vec<(String, u64)>,
}

impl RunReport {
    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let epochs = self
            .epochs
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("epoch".into(), Json::Num(e.epoch as f64)),
                    ("loss".into(), Json::Num(e.loss as f64)),
                    ("train_s".into(), Json::Num(e.train_s)),
                    ("val_ap".into(), Json::Num(e.val_ap)),
                    (
                        "phases_s".into(),
                        Json::Obj(
                            e.phases_s
                                .iter()
                                .map(|(n, s)| (n.clone(), Json::Num(*s)))
                                .collect(),
                        ),
                    ),
                    (
                        "counters".into(),
                        Json::Obj(
                            e.counters
                                .iter()
                                .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema".into(), Json::Str("tgl-run-report/v1".into())),
            ("meta".into(), Json::Obj(self.meta.clone())),
            ("epochs".into(), Json::Arr(epochs)),
            (
                "test".into(),
                Json::obj(vec![
                    ("ap".into(), Json::Num(self.test_ap)),
                    ("secs".into(), Json::Num(self.test_s)),
                ]),
            ),
            (
                "counters_total".into(),
                Json::Obj(
                    self.counters_total
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Collects per-epoch phase and counter snapshots during a run.
///
/// [`RunReporter::start`] enables the profiler and baselines the
/// counter registry; call [`record_epoch`](RunReporter::record_epoch)
/// after each training epoch and [`finish`](RunReporter::finish) after
/// test inference.
#[derive(Debug)]
pub struct RunReporter {
    meta: Vec<(String, Json)>,
    epochs: Vec<EpochReport>,
    last_counters: HashMap<String, u64>,
    prof_was_enabled: bool,
}

impl RunReporter {
    /// Starts reporting: enables phase profiling (restored by
    /// [`finish`](RunReporter::finish)), drains any stale phases, and
    /// baselines counters so epoch deltas start from here.
    pub fn start() -> RunReporter {
        let prof_was_enabled = prof::enabled();
        prof::enable(true);
        prof::take();
        RunReporter {
            meta: Vec::new(),
            epochs: Vec::new(),
            last_counters: snapshot_map(),
            prof_was_enabled,
        }
    }

    /// Attaches a metadata string (model name, dataset, ...).
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), Json::Str(value.to_string())));
    }

    /// Attaches a numeric metadata value (seed, threads, scale, ...).
    pub fn set_meta_num(&mut self, key: &str, value: f64) {
        self.meta.push((key.to_string(), Json::Num(value)));
    }

    /// Epoch reports recorded so far (most recent last).
    pub fn epochs_so_far(&self) -> &[EpochReport] {
        &self.epochs
    }

    /// Records one finished epoch: drains accumulated phases and diffs
    /// counters against the previous snapshot.
    pub fn record_epoch(&mut self, epoch: usize, stats: &EpochStats) {
        let phases_s = prof::take()
            .into_iter()
            .map(|(n, d)| (n.to_string(), d.as_secs_f64()))
            .collect();
        let now = snapshot_map();
        let mut counters: Vec<(String, u64)> = now
            .iter()
            .map(|(n, v)| {
                let before = self.last_counters.get(n).copied().unwrap_or(0);
                (n.clone(), v - before)
            })
            .collect();
        counters.sort();
        self.last_counters = now;
        self.epochs.push(EpochReport {
            epoch,
            loss: stats.loss,
            train_s: stats.train_time_s,
            val_ap: stats.val_ap,
            phases_s,
            counters,
        });
    }

    /// Finishes the run: restores the profiler's previous enable state
    /// and returns the report with final absolute counter values.
    pub fn finish(mut self, test_ap: f64, test_s: f64) -> RunReport {
        prof::take();
        prof::enable(self.prof_was_enabled);
        let mut counters_total: Vec<(String, u64)> = obs::metrics::snapshot()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        counters_total.sort();
        self.meta.sort_by(|a, b| a.0.cmp(&b.0));
        RunReport {
            meta: std::mem::take(&mut self.meta),
            epochs: std::mem::take(&mut self.epochs),
            test_ap,
            test_s,
            counters_total,
        }
    }
}

fn snapshot_map() -> HashMap<String, u64> {
    obs::metrics::snapshot()
        .into_iter()
        .map(|(n, v)| (n.to_string(), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Profiler and counters are process-global; serialize tests that
    /// exercise them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stats() -> EpochStats {
        EpochStats {
            loss: 0.5,
            train_time_s: 1.25,
            val_ap: 0.9,
        }
    }

    #[test]
    fn reporter_collects_phases_and_counter_deltas() {
        let _g = serial();
        let mut rep = RunReporter::start();
        rep.set_meta("model", "tgat");
        rep.set_meta_num("seed", 42.0);
        prof::add("report-test-phase", Duration::from_millis(3));
        obs::counter!("report.test.events").add(7);
        rep.record_epoch(0, &stats());
        obs::counter!("report.test.events").add(2);
        rep.record_epoch(1, &stats());
        let report = rep.finish(0.91, 0.2);

        assert_eq!(report.epochs.len(), 2);
        let e0 = &report.epochs[0];
        assert!(e0.phases_s.iter().any(|(n, s)| n == "report-test-phase" && *s > 0.0));
        let delta = |e: &EpochReport| {
            e.counters
                .iter()
                .find(|(n, _)| n == "report.test.events")
                .map(|(_, v)| *v)
        };
        assert_eq!(delta(e0), Some(7));
        assert_eq!(delta(&report.epochs[1]), Some(2));
        let total = report
            .counters_total
            .iter()
            .find(|(n, _)| n == "report.test.events")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(total >= 9);
    }

    #[test]
    fn report_json_parses_and_has_schema() {
        let _g = serial();
        let mut rep = RunReporter::start();
        rep.set_meta("dataset", "wiki \"scaled\"");
        prof::add("report-test-json", Duration::from_millis(1));
        rep.record_epoch(0, &stats());
        let report = rep.finish(0.9, 0.1);
        let v = Json::parse(&report.to_json()).expect("report must be valid JSON");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("tgl-run-report/v1")
        );
        let epochs = v.get("epochs").and_then(Json::as_arr).unwrap();
        assert_eq!(epochs.len(), 1);
        assert!(epochs[0]
            .get("phases_s")
            .and_then(|p| p.get("report-test-json"))
            .is_some());
        assert_eq!(
            v.get("meta").and_then(|m| m.get("dataset")).and_then(Json::as_str),
            Some("wiki \"scaled\"")
        );
        assert!(v.get("test").and_then(|t| t.get("ap")).is_some());
    }

    #[test]
    fn finish_restores_profiler_state() {
        let _g = serial();
        prof::enable(false);
        let rep = RunReporter::start();
        assert!(prof::enabled());
        rep.finish(0.0, 0.0);
        assert!(!prof::enabled());
    }
}
