//! Bench-trajectory comparison backing `tgl jsoncheck --trend`.
//!
//! Compares wall-time series between two benchmark JSON documents
//! (typically a freshly generated `BENCH_*.json` and the committed
//! copy extracted with `git show`), producing a per-series delta table
//! and the worst regression percentage. Only keys whose leaf name is a
//! wall-time measurement (`secs`, `wall_s`) are compared — counts,
//! ratios, and configuration echo through unchanged between runs and
//! would only add noise.

use tgl_data::Json;

/// One compared series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Flattened key path, e.g. `runs[2].wall_s`.
    pub key: String,
    /// Value in the old (committed) document.
    pub old: f64,
    /// Value in the new (fresh) document.
    pub new: f64,
    /// Relative change in percent; positive = slower.
    pub delta_pct: f64,
}

/// Flattens a JSON document into `(path, value)` rows for every
/// numeric leaf, using `a.b[0].c` path syntax.
pub fn flatten_numeric(v: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(String::new(), v, &mut out);
    out
}

fn walk(prefix: String, v: &Json, out: &mut Vec<(String, f64)>) {
    match v {
        Json::Num(n) => out.push((prefix, *n)),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                walk(format!("{prefix}[{i}]"), item, out);
            }
        }
        Json::Obj(pairs) => {
            for (k, item) in pairs {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(path, item, out);
            }
        }
        _ => {}
    }
}

/// Whether a flattened key names a wall-time measurement.
pub fn is_wall_time_key(key: &str) -> bool {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    matches!(leaf, "secs" | "wall_s")
}

/// Compares wall-time series present in both documents.
pub fn compare(old: &Json, new: &Json) -> Vec<TrendRow> {
    let old_rows = flatten_numeric(old);
    let new_rows: std::collections::HashMap<String, f64> =
        flatten_numeric(new).into_iter().collect();
    old_rows
        .into_iter()
        .filter(|(k, _)| is_wall_time_key(k))
        .filter_map(|(key, old_v)| {
            let new_v = *new_rows.get(&key)?;
            let delta_pct = if old_v.abs() < 1e-12 {
                0.0
            } else {
                (new_v - old_v) / old_v * 100.0
            };
            Some(TrendRow {
                key,
                old: old_v,
                new: new_v,
                delta_pct,
            })
        })
        .collect()
}

/// Renders the delta table, worst regression first.
pub fn render_table(rows: &[TrendRow]) -> String {
    let mut rows: Vec<&TrendRow> = rows.iter().collect();
    rows.sort_by(|a, b| b.delta_pct.total_cmp(&a.delta_pct));
    let width = rows.iter().map(|r| r.key.len()).max().unwrap_or(6).max(6);
    let mut out = format!(
        "{:<width$}  {:>10}  {:>10}  {:>8}\n",
        "series", "old (s)", "new (s)", "delta"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<width$}  {:>10.4}  {:>10.4}  {:>+7.1}%\n",
            r.key, r.old, r.new, r.delta_pct
        ));
    }
    out
}

/// The largest positive delta (0 when nothing regressed).
pub fn worst_regression(rows: &[TrendRow]) -> f64 {
    rows.iter().map(|r| r.delta_pct).fold(0.0, f64::max)
}

/// Wall-time series present in `old` but absent from `new` — a renamed
/// or dropped bench config. These degrade to a warning line rather
/// than failing the check: the budget only applies to series both
/// documents share.
pub fn missing_series(old: &Json, new: &Json) -> Vec<String> {
    let new_keys: std::collections::HashSet<String> = flatten_numeric(new)
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    flatten_numeric(old)
        .into_iter()
        .filter(|(k, _)| is_wall_time_key(k) && !new_keys.contains(k))
        .map(|(k, _)| k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test JSON")
    }

    #[test]
    fn flatten_walks_nested_structure() {
        let v = parse(r#"{"a": {"b": [1, 2]}, "c": 3, "s": "x"}"#);
        let rows = flatten_numeric(&v);
        assert_eq!(
            rows,
            vec![
                ("a.b[0]".to_string(), 1.0),
                ("a.b[1]".to_string(), 2.0),
                ("c".to_string(), 3.0),
            ]
        );
    }

    #[test]
    fn only_wall_time_keys_are_compared() {
        let old = parse(r#"{"runs": [{"wall_s": 1.0, "iters": 100}], "secs": 2.0}"#);
        let new = parse(r#"{"runs": [{"wall_s": 1.5, "iters": 700}], "secs": 2.0}"#);
        let rows = compare(&old, &new);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| !r.key.contains("iters")));
        let wall = rows.iter().find(|r| r.key == "runs[0].wall_s").unwrap();
        assert!((wall.delta_pct - 50.0).abs() < 1e-9);
        assert_eq!(worst_regression(&rows), wall.delta_pct);
    }

    #[test]
    fn improvements_are_not_regressions() {
        let old = parse(r#"{"secs": 2.0}"#);
        let new = parse(r#"{"secs": 1.0}"#);
        let rows = compare(&old, &new);
        assert_eq!(rows[0].delta_pct, -50.0);
        assert_eq!(worst_regression(&rows), 0.0);
    }

    #[test]
    fn missing_series_are_skipped() {
        let old = parse(r#"{"secs": 2.0, "gone": {"wall_s": 1.0}}"#);
        let new = parse(r#"{"secs": 2.2}"#);
        let rows = compare(&old, &new);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, "secs");
    }

    #[test]
    fn missing_series_are_reported_as_warnings() {
        let old = parse(r#"{"secs": 2.0, "gone": {"wall_s": 1.0}, "iters": 5}"#);
        let new = parse(r#"{"secs": 2.2}"#);
        let missing = missing_series(&old, &new);
        assert_eq!(missing, vec!["gone.wall_s".to_string()]);
        // Non-wall-time keys never warn; nothing missing → no warnings.
        assert!(missing_series(&new, &old).is_empty());
    }

    #[test]
    fn table_renders_every_series() {
        let rows = vec![
            TrendRow {
                key: "a.secs".into(),
                old: 1.0,
                new: 1.3,
                delta_pct: 30.0,
            },
            TrendRow {
                key: "b.secs".into(),
                old: 1.0,
                new: 0.9,
                delta_pct: -10.0,
            },
        ];
        let t = render_table(&rows);
        assert!(t.contains("a.secs"));
        assert!(t.contains("b.secs"));
        assert!(t.contains("+30.0%"));
        // Worst regression sorts first.
        assert!(t.find("a.secs").unwrap() < t.find("b.secs").unwrap());
    }
}
