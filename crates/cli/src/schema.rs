//! Known-schema validation for `tgl jsoncheck`.
//!
//! The observability artifacts carry a `"schema"` discriminator
//! (`tgl-timeseries/v1`, `tgl-alerts/v1`, ...). After the generic
//! parse/round-trip check, `jsoncheck` looks the discriminator up here
//! and — when it names a schema this module knows — validates the
//! document's shape so CI catches a writer drifting from its contract,
//! not just malformed text. Unknown or absent schemas pass untouched:
//! plain JSON stays plain.

use tgl_data::Json;

/// Validates a parsed document against its declared `schema` field.
///
/// Returns `Ok(Some(name))` when a known schema matched and every
/// shape constraint held, `Ok(None)` when the document declares no
/// (known) schema, and `Err` naming the first violated constraint.
pub fn validate(v: &Json) -> Result<Option<&'static str>, String> {
    let Some(schema) = v.get("schema").and_then(Json::as_str) else {
        return Ok(None);
    };
    match schema {
        "tgl-timeseries/v1" => timeseries(v).map(|()| Some("tgl-timeseries/v1")),
        "tgl-alerts/v1" => alerts(v).map(|()| Some("tgl-alerts/v1")),
        "tgl-insight/v1" => insight(v).map(|()| Some("tgl-insight/v1")),
        _ => Ok(None),
    }
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn string<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field {key:?}"))
}

fn boolean(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field {key:?}")),
    }
}

/// Number or `null` — how the writers render non-finite samples.
fn num_or_null(v: &Json, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Json::Num(_)) | Some(Json::Null) => Ok(()),
        _ => Err(format!("field {key:?} must be a number or null")),
    }
}

fn timeseries(v: &Json) -> Result<(), String> {
    num(v, "unix_ms")?;
    num(v, "retain")?;
    num(v, "ticks")?;
    for (i, s) in arr(v, "series")?.iter().enumerate() {
        let name = string(s, "name").map_err(|e| format!("series[{i}]: {e}"))?;
        let kind = string(s, "kind").map_err(|e| format!("series[{i}] {name:?}: {e}"))?;
        if !matches!(kind, "push" | "counter-delta" | "gauge" | "quantile") {
            return Err(format!("series[{i}] {name:?}: unknown kind {kind:?}"));
        }
        num(s, "total").map_err(|e| format!("series[{i}] {name:?}: {e}"))?;
        let points = arr(s, "points").map_err(|e| format!("series[{i}] {name:?}: {e}"))?;
        let mut prev_idx = None::<f64>;
        for (j, p) in points.iter().enumerate() {
            let pair = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("series {name:?} point[{j}]: expected [idx, value]"))?;
            let idx = pair[0]
                .as_num()
                .ok_or_else(|| format!("series {name:?} point[{j}]: non-numeric idx"))?;
            if !matches!(pair[1], Json::Num(_) | Json::Null) {
                return Err(format!(
                    "series {name:?} point[{j}]: value must be a number or null"
                ));
            }
            if prev_idx.is_some_and(|p| idx <= p) {
                return Err(format!(
                    "series {name:?} point[{j}]: idx {idx} not strictly increasing"
                ));
            }
            prev_idx = Some(idx);
        }
    }
    Ok(())
}

fn alerts(v: &Json) -> Result<(), String> {
    num(v, "unix_ms")?;
    boolean(v, "installed")?;
    for (i, r) in arr(v, "rules")?.iter().enumerate() {
        let name = string(r, "name").map_err(|e| format!("rules[{i}]: {e}"))?;
        let ctx = |e| format!("rule {name:?}: {e}");
        string(r, "metric").map_err(ctx)?;
        string(r, "condition").map_err(ctx)?;
        num(r, "window").map_err(ctx)?;
        num(r, "for").map_err(ctx)?;
        let sev = string(r, "severity").map_err(ctx)?;
        if !matches!(sev, "info" | "warn" | "fail") {
            return Err(format!("rule {name:?}: unknown severity {sev:?}"));
        }
        boolean(r, "firing").map_err(ctx)?;
        num(r, "fired_total").map_err(ctx)?;
        num(r, "last_idx").map_err(ctx)?;
        num_or_null(r, "last_value").map_err(ctx)?;
    }
    for (i, t) in arr(v, "transitions")?.iter().enumerate() {
        let ctx = |e| format!("transitions[{i}]: {e}");
        string(t, "rule").map_err(ctx)?;
        string(t, "metric").map_err(ctx)?;
        let sev = string(t, "severity").map_err(ctx)?;
        if !matches!(sev, "info" | "warn" | "fail") {
            return Err(format!("transitions[{i}]: unknown severity {sev:?}"));
        }
        boolean(t, "firing").map_err(ctx)?;
        num(t, "idx").map_err(ctx)?;
        num_or_null(t, "value").map_err(ctx)?;
    }
    Ok(())
}

fn insight(v: &Json) -> Result<(), String> {
    num(v, "unix_ms")?;
    num(v, "steps")?;
    for (i, s) in arr(v, "stats")?.iter().enumerate() {
        let name = string(s, "name").map_err(|e| format!("stats[{i}]: {e}"))?;
        let ctx = |e| format!("stat {name:?}: {e}");
        num(s, "count").map_err(ctx)?;
        // Summary moments of a diverged layer are legitimately
        // non-finite, which the writer renders as null.
        for key in ["mean", "std", "min", "max", "last"] {
            num_or_null(s, key).map_err(ctx)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect("test JSON parses")
    }

    #[test]
    fn documents_without_a_known_schema_pass() {
        assert_eq!(validate(&parse("{\"a\": 1}")), Ok(None));
        assert_eq!(validate(&parse("{\"schema\": \"tgl-profile/v1\"}")), Ok(None));
        assert_eq!(validate(&parse("[1, 2]")), Ok(None));
    }

    #[test]
    fn valid_timeseries_passes() {
        let doc = parse(
            "{\"schema\": \"tgl-timeseries/v1\", \"unix_ms\": 1, \"retain\": 512, \
             \"ticks\": 3, \"series\": [{\"name\": \"train.loss\", \"kind\": \"push\", \
             \"total\": 4, \"points\": [[0, 0.5], [1, null], [3, 0.25]]}]}",
        );
        assert_eq!(validate(&doc), Ok(Some("tgl-timeseries/v1")));
    }

    #[test]
    fn timeseries_violations_are_named() {
        let bad_kind = parse(
            "{\"schema\": \"tgl-timeseries/v1\", \"unix_ms\": 1, \"retain\": 8, \
             \"ticks\": 0, \"series\": [{\"name\": \"x\", \"kind\": \"meter\", \
             \"total\": 0, \"points\": []}]}",
        );
        assert!(validate(&bad_kind).unwrap_err().contains("unknown kind"));

        let bad_point = parse(
            "{\"schema\": \"tgl-timeseries/v1\", \"unix_ms\": 1, \"retain\": 8, \
             \"ticks\": 0, \"series\": [{\"name\": \"x\", \"kind\": \"push\", \
             \"total\": 1, \"points\": [[0]]}]}",
        );
        assert!(validate(&bad_point).unwrap_err().contains("expected [idx, value]"));

        let non_monotone = parse(
            "{\"schema\": \"tgl-timeseries/v1\", \"unix_ms\": 1, \"retain\": 8, \
             \"ticks\": 0, \"series\": [{\"name\": \"x\", \"kind\": \"push\", \
             \"total\": 2, \"points\": [[1, 0.1], [1, 0.2]]}]}",
        );
        assert!(validate(&non_monotone).unwrap_err().contains("strictly increasing"));

        let missing = parse("{\"schema\": \"tgl-timeseries/v1\", \"unix_ms\": 1}");
        assert!(validate(&missing).unwrap_err().contains("retain"));
    }

    #[test]
    fn valid_insight_passes_and_violations_are_named() {
        let doc = parse(
            "{\"schema\": \"tgl-insight/v1\", \"unix_ms\": 1, \"steps\": 12, \
             \"stats\": [{\"name\": \"insight.layer.layer0.w_q.grad_norm\", \
             \"count\": 12, \"mean\": 0.2, \"std\": 0.05, \"min\": 0.1, \
             \"max\": null, \"last\": 0.3}]}",
        );
        assert_eq!(validate(&doc), Ok(Some("tgl-insight/v1")));

        let missing_steps = parse("{\"schema\": \"tgl-insight/v1\", \"unix_ms\": 1, \"stats\": []}");
        assert!(validate(&missing_steps).unwrap_err().contains("steps"));

        let bad_stat = parse(
            "{\"schema\": \"tgl-insight/v1\", \"unix_ms\": 1, \"steps\": 1, \
             \"stats\": [{\"name\": \"x\", \"count\": 1, \"mean\": 0.1, \
             \"std\": 0.0, \"min\": 0.1, \"max\": 0.1, \"last\": \"nan\"}]}",
        );
        assert!(validate(&bad_stat).unwrap_err().contains("last"));
    }

    #[test]
    fn valid_alerts_passes() {
        let doc = parse(
            "{\"schema\": \"tgl-alerts/v1\", \"unix_ms\": 1, \"installed\": true, \
             \"rules\": [{\"name\": \"r\", \"metric\": \"train.loss\", \
             \"condition\": \"above 1\", \"window\": 4, \"for\": 2, \
             \"severity\": \"warn\", \"firing\": false, \"fired_total\": 0, \
             \"last_idx\": 0, \"last_value\": null}], \
             \"transitions\": [{\"rule\": \"r\", \"metric\": \"train.loss\", \
             \"severity\": \"warn\", \"firing\": true, \"idx\": 7, \"value\": 2.5}]}",
        );
        assert_eq!(validate(&doc), Ok(Some("tgl-alerts/v1")));
    }

    #[test]
    fn alert_violations_are_named() {
        let bad_sev = parse(
            "{\"schema\": \"tgl-alerts/v1\", \"unix_ms\": 1, \"installed\": true, \
             \"rules\": [{\"name\": \"r\", \"metric\": \"m\", \"condition\": \"c\", \
             \"window\": 1, \"for\": 1, \"severity\": \"panic\", \"firing\": false, \
             \"fired_total\": 0, \"last_idx\": 0, \"last_value\": 0}], \
             \"transitions\": []}",
        );
        assert!(validate(&bad_sev).unwrap_err().contains("unknown severity"));

        let bad_installed =
            parse("{\"schema\": \"tgl-alerts/v1\", \"unix_ms\": 1, \"installed\": 3, \
                   \"rules\": [], \"transitions\": []}");
        assert!(validate(&bad_installed).unwrap_err().contains("installed"));
    }
}
