//! Minimal dependency-free flag parsing (`--key value` / `--flag`).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options and
/// bare `--flag` switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list (excluding the program name).
    ///
    /// The first non-flag token becomes the subcommand. A token
    /// `--key` followed by a non-`--` token is a valued option;
    /// otherwise it is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Args {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let val = iter.next().expect("peeked");
                        out.values.insert(key.to_string(), val);
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.subcommand.is_none() {
                out.subcommand = Some(tok);
            } else {
                // Positional after the subcommand: treat as error fodder
                // for the caller; store under a reserved key.
                out.values.entry("_extra".into()).or_default().push_str(&tok);
            }
        }
        out
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// String option value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed option with a default.
    ///
    /// # Panics
    ///
    /// Panics (with a clear message) if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{key}: cannot parse {v:?}")),
        }
    }

    /// Whether a boolean `--flag` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_values() {
        let a = parse("train --model tgat --epochs 3 --opt-all");
        assert_eq!(a.subcommand(), Some("train"));
        assert_eq!(a.get("model"), Some("tgat"));
        assert_eq!(a.get_or("epochs", 1usize), 3);
        assert!(a.has_flag("opt-all"));
        assert!(!a.has_flag("move"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("train");
        assert_eq!(a.get_or("batch", 200usize), 200);
        assert_eq!(a.get("model"), None);
    }

    #[test]
    fn flag_before_value_option() {
        let a = parse("eval --quiet --lr 0.01");
        assert!(a.has_flag("quiet"));
        assert_eq!(a.get_or("lr", 0.0f32), 0.01);
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_value_panics() {
        parse("train --epochs banana").get_or("epochs", 1usize);
    }

    #[test]
    fn no_subcommand() {
        let a = parse("--help");
        assert_eq!(a.subcommand(), None);
        assert!(a.has_flag("help"));
    }
}
