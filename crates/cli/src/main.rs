//! `tgl` — command-line training and evaluation for the TGLite
//! reproduction, mirroring the paper artifact's workflow
//! (`./exp/tgat.sh -d wiki --epochs 3 --move --opt-all`).
//!
//! ```sh
//! tgl train --model tgat --dataset wiki --epochs 3 --opt-all --move
//! tgl train --model tgn --dataset reddit --framework tgl
//! tgl generate --dataset lastfm --out lastfm.csv
//! tgl stats --dataset gdelt
//! tgl --help
//! ```

mod args;
mod promcheck;
mod schema;
mod trend;

use std::sync::Arc;

use args::Args;
use tgl_data::{generate, save_csv, temporal_stats, DatasetKind, DatasetSpec, Split};
use tgl_device::{Device, TransferModel};
use tgl_harness::runner::build_model;
use tgl_harness::{Framework, MetricLog, ModelKind, TrainConfig, Trainer};
use tgl_models::ModelConfig;
use tglite::TContext;

const HELP: &str = "\
tgl — TGLite reproduction command line

USAGE:
    tgl <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    train      train a model and report per-epoch loss/AP + test AP
    eval       inference-only run over the test split
    generate   write a synthetic dataset's edge list as CSV
    stats      print a dataset's structural statistics
    jsoncheck  parse a JSON file and exit nonzero if malformed; known
               schemas (tgl-timeseries/v1, tgl-alerts/v1,
               tgl-insight/v1) also get shape-validated against their
               contract;
               with --trend --old <PATH> [--budget <PCT>] also compare
               wall-time series against an older copy and fail on
               regressions beyond the budget (default 25%)
    promcheck  scrape a live /metrics endpoint (`tgl promcheck <ADDR>
               [--min-hist <N>] [--require <NAME[,NAME...]>] [--quit]`)
               and validate the Prometheus exposition; --require fails
               unless every named family appears in the scrape
    get        fetch one path from a live metrics server and print the
               body (`tgl get <ADDR> <PATH>`, e.g. `tgl get
               127.0.0.1:9184 /timeseries.json`); exits nonzero unless
               the response is HTTP 200

OBSERVABILITY OPTIONS (train/eval):
    --prof               print the per-phase epoch breakdown (Fig. 7)
    --profile            per-operator profile: top-k table of self
                         time, calls, achieved GFLOP/s, arithmetic
                         intensity, and a roofline verdict (compute-
                         vs bandwidth-bound vs data movement), plus
                         per-phase attribution coverage
    --profile-out <PATH> write the op profile as a tgl-profile/v1
                         JSON artifact (implies --profile collection)
    --profile-top <N>    rows in the --profile table (default 15)
    --trace-out <PATH>   write a Chrome trace-event JSON of all spans
                         (open in chrome://tracing or ui.perfetto.dev)
    --critpath           enable span tracing and print a critical-path
                         table after the run: per-stage serial vs
                         exclusive vs overlapped time, the critical
                         path itself, overlap efficiency, and pool
                         busy/wait attribution
    --critpath-out <PATH>  write the analysis as a tgl-critpath/v1
                         JSON artifact (implies --critpath)
    --insight            model & data introspection: per-parameter-group
                         gradient/weight norms and update ratios,
                         dead-activation fractions, memory staleness,
                         neighbor time-delta spread, negative-sampling
                         collisions, dedup effectiveness, and mailbox
                         depth — printed as a per-layer table at end of
                         run; series land in the time-series store
                         (insight.*) so --slo rules can target them,
                         and /insight.json serves them live (also via
                         TGL_INSIGHT=1)
    --insight-out <PATH> write the summaries as a tgl-insight/v1 JSON
                         artifact (implies --insight)
    --insight-top <N>    parameter-group rows in the --insight table
                         (default 8)
    --flight <on|off>    flight recorder: always-on ring of recent
                         spans/health events dumped on panic or
                         health-fail (default on; also TGL_FLIGHT=off;
                         dumps land in TGL_FLIGHT_DIR or the cwd)
    --flight-out <PATH>  write a flight dump at end of run
    --metrics-out <PATH> write a structured JSON run report (per-epoch
                         phases, counters, latency histograms, health,
                         critpath section when tracing is on)
    --serve-metrics <ADDR>  serve /metrics, /healthz, /report.json,
                         /profile.json, /critpath.json, /flight.json,
                         /timeseries.json, /alerts.json, /insight.json,
                         /dashboard
                         and /quit over HTTP while the run executes
                         (e.g. 127.0.0.1:0; also via TGL_METRICS_ADDR);
                         enables time-series retention and a background
                         sampler so /dashboard stays live between steps
    --slo <PATH>         load SLO alert rules (INI sections with metric,
                         window, for, severity, and above/below/trend/
                         nonfinite/pegged conditions), enable the
                         time-series store, and evaluate the rules each
                         training step; firings route through --health
                         and are summarized at end of run (also via
                         TGL_SLO)
    --serve-hold         after the run, keep serving until GET /quit
                         (or a 10-minute timeout)
    --health <off|warn|fail>  non-finite loss/gradient policy: warn
                         records a health event and skips the batch
                         (default), fail aborts, off disables checks
                         (also via TGL_HEALTH)
    --threads <N>        set the worker pool width (overrides TGL_THREADS)
    --pipeline <N>       pipelined training: a sampler stage prefetches
                         up to N batches (negatives, neighbor sampling,
                         transfer staging) ahead of the compute stage
                         over a bounded channel; 0 = sequential
                         reference (default; also via TGL_PIPELINE).
                         Losses are bitwise identical at any depth
    --kernel <exact|fast>  tensor kernel contract (overrides TGL_KERNEL):
                         exact = bitwise identical to the scalar
                         reference on every host (default), fast =
                         SIMD with FMA contraction and vectorized
                         exp/reductions (tolerance-level differences)

COMMON OPTIONS:
    --dataset <wiki|mooc|reddit|lastfm|wikitalk|gdelt>   (default wiki)
    --scale <N>        divide dataset node/edge counts by N (default 2)
    --model <jodie|apan|tgat|tgn>                        (default tgat)
    --framework <tgl|tglite|tglite-opt>                  (default tglite-opt)
    --epochs <N>       training epochs                   (default 3)
    --batch <N>        batch size                        (default 200)
    --lr <F>           Adam learning rate                (default 1e-3)
    --seed <N>         parameter seed                    (default 42)
    --move             keep data on CPU host and move per batch
                       (the paper's CPU-to-GPU case; default all-on-GPU)
    --opt-all          shorthand: framework = tglite-opt
    --csv <PATH>       write per-epoch metrics as CSV
    --ckpt <PATH>      save final parameters to a checkpoint
    --out <PATH>       output path for `generate` (default <dataset>.csv)
";

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    if args.has_flag("help") || args.subcommand().is_none() {
        print!("{HELP}");
        return;
    }
    match args.subcommand().unwrap() {
        "train" => train(&args, false),
        "eval" => train(&args, true),
        "generate" => generate_cmd(&args),
        "stats" => stats_cmd(&args),
        "jsoncheck" => jsoncheck_cmd(&args),
        "promcheck" => promcheck_cmd(&args),
        "get" => get_cmd(&args),
        other => {
            eprintln!("unknown subcommand {other:?}\n");
            print!("{HELP}");
            std::process::exit(2);
        }
    }
}

fn dataset_kind(args: &Args) -> DatasetKind {
    let name = args.get("dataset").unwrap_or("wiki");
    DatasetKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name:?} (try wiki/mooc/reddit/lastfm/wikitalk/gdelt)");
            std::process::exit(2);
        })
}

fn spec(args: &Args) -> DatasetSpec {
    DatasetSpec::of(dataset_kind(args)).scaled_down(args.get_or("scale", 2))
}

fn model_kind(args: &Args) -> ModelKind {
    let name = args.get("model").unwrap_or("tgat");
    ModelKind::all()
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown model {name:?} (try jodie/apan/tgat/tgn)");
            std::process::exit(2);
        })
}

fn framework(args: &Args) -> Framework {
    if args.has_flag("opt-all") {
        return Framework::TgLiteOpt;
    }
    match args.get("framework").unwrap_or("tglite-opt") {
        "tgl" => Framework::Tgl,
        "tglite" => Framework::TgLite,
        "tglite-opt" => Framework::TgLiteOpt,
        other => {
            eprintln!("unknown framework {other:?} (try tgl/tglite/tglite-opt)");
            std::process::exit(2);
        }
    }
}

fn train(args: &Args, eval_only: bool) {
    // Any panic from here on — kernel bug, assert, health trip —
    // leaves a flight-recorder post-mortem on disk.
    tgl_harness::install_flight_hook();
    if let Some(v) = args.get("flight") {
        match v {
            "off" | "0" => tgl_obs::flight::enable(false),
            "on" | "1" => tgl_obs::flight::enable(true),
            other => {
                eprintln!("--flight: unknown value {other:?} (try on/off)");
                std::process::exit(2);
            }
        }
    }
    let spec = spec(args);
    let fw = framework(args);
    let mk = model_kind(args);
    let host_resident = args.has_flag("move");
    if let Some(policy) = args.get("health") {
        if tgl_harness::HealthPolicy::parse(policy).is_none() {
            eprintln!("--health: unknown policy {policy:?} (try off/warn/fail)");
            std::process::exit(2);
        }
        // Through the environment so the trainer and the run reporter
        // agree on the active policy.
        std::env::set_var("TGL_HEALTH", policy);
    }
    let serving = if let Some(addr) = args.get("serve-metrics") {
        match tgl_obs::expo::start(addr) {
            Ok(bound) => {
                println!("metrics server listening on http://{bound}/metrics");
                Some(bound)
            }
            Err(e) => {
                eprintln!("--serve-metrics {addr}: bind failed: {e}");
                std::process::exit(2);
            }
        }
    } else {
        tgl_obs::expo::start_from_env().inspect(|bound| {
            println!("metrics server listening on http://{bound}/metrics");
        })
    };
    // SLO alert rules: install before the run so the first step already
    // evaluates them; installing implies the time-series store.
    let slo_path = args
        .get("slo")
        .map(String::from)
        .or_else(|| std::env::var("TGL_SLO").ok().filter(|p| !p.is_empty()));
    if let Some(path) = &slo_path {
        match tgl_obs::alert::RuleSet::from_file(std::path::Path::new(path)) {
            Ok(rules) => {
                let n = rules.rules.len();
                tgl_obs::alert::install(rules);
                tgl_obs::timeseries::enable(true);
                println!("slo: loaded {n} alert rule(s) from {path}");
            }
            Err(e) => {
                eprintln!("--slo {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if serving.is_some() {
        // A live /dashboard needs retained series even without --slo,
        // and a background sampler so gauges and latency quantiles keep
        // advancing between scrapes once the training loop is done.
        tgl_obs::timeseries::enable(true);
        tgl_obs::timeseries::start_sampler(500);
    }
    let insight_out = args.get("insight-out").map(std::path::PathBuf::from);
    let insight = args.has_flag("insight") || insight_out.is_some();
    if insight {
        // Insight series flow through the time-series store, so the
        // flag implies retention (same as --slo).
        tgl_obs::insight::enable(true);
        tgl_obs::timeseries::enable(true);
    }
    if let Some(n) = args.get("threads") {
        let n: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("--threads: cannot parse {n:?}");
            std::process::exit(2);
        });
        tgl_runtime::set_threads(n);
    }
    if let Some(mode) = args.get("kernel") {
        match tgl_tensor::kernel::parse(mode) {
            Some(m) => tgl_tensor::kernel::set_mode(m),
            None => {
                eprintln!("--kernel: unknown mode {mode:?} (try exact/fast)");
                std::process::exit(2);
            }
        }
    }
    let show_prof = args.has_flag("prof");
    let trace_out = args.get("trace-out").map(std::path::PathBuf::from);
    let metrics_out = args.get("metrics-out").map(std::path::PathBuf::from);
    let profile_out = args.get("profile-out").map(std::path::PathBuf::from);
    let profiling = args.has_flag("profile") || profile_out.is_some();
    let critpath_out = args.get("critpath-out").map(std::path::PathBuf::from);
    let critpath = args.has_flag("critpath") || critpath_out.is_some();
    if trace_out.is_some() || critpath {
        // Critical-path analysis consumes tracer spans, so --critpath
        // implies tracing for the run.
        tglite::obs::trace::enable(true);
    }
    if profiling {
        tgl_obs::profile::enable(true);
    }
    println!(
        "{} {} on {} ({} nodes, {} edges), {}",
        if eval_only { "evaluating" } else { "training" },
        mk.label(),
        spec.kind.name(),
        spec.num_nodes(),
        spec.n_edges,
        if host_resident { "CPU-to-GPU" } else { "all-on-GPU" }
    );

    let (g, _) = generate(&spec);
    if !host_resident {
        if let Some(f) = g.node_feats() {
            g.set_node_feats(f.to(Device::Accel));
        }
        if let Some(f) = g.edge_feats() {
            g.set_edge_feats(f.to(Device::Accel));
        }
    }
    tgl_device::set_transfer_model(if host_resident {
        TransferModel::scaled(TransferModel::pcie_v100(), 400.0)
    } else {
        TransferModel::disabled()
    });
    let ctx = TContext::with_device(Arc::clone(&g), Device::Accel);
    let split = Split::standard(&g);
    let model_cfg = ModelConfig {
        emb_dim: args.get_or("emb-dim", 32),
        time_dim: args.get_or("time-dim", 16),
        heads: args.get_or("heads", 2),
        n_layers: args.get_or("layers", 2),
        n_neighbors: args.get_or("neighbors", 10),
        mailbox_slots: args.get_or("mailbox", 10),
    };
    let mut model = build_model(fw, mk, &ctx, model_cfg, args.get_or("seed", 42));
    let train_cfg = TrainConfig {
        batch_size: args.get_or("batch", 200),
        epochs: if eval_only { 0 } else { args.get_or("epochs", 3) },
        lr: args.get_or("lr", 1e-3),
        seed: args.get_or("seed", 42) ^ 0x5eed,
    };
    let (neg_lo, neg_hi) = if spec.bipartite() {
        (spec.n_src as u32, spec.num_nodes() as u32)
    } else {
        (0, spec.num_nodes() as u32)
    };
    let mut trainer = Trainer::new(train_cfg, neg_lo, neg_hi);
    if let Some(depth) = args.get("pipeline") {
        match depth.parse::<usize>() {
            Ok(d) => trainer = trainer.with_pipeline(d),
            Err(_) => {
                eprintln!("--pipeline: expected a queue depth, got {depth:?}");
                std::process::exit(2);
            }
        }
    }

    if eval_only {
        if let Some(path) = args.get("ckpt") {
            model.load(std::path::Path::new(path)).expect("load checkpoint");
            println!("loaded checkpoint {path}");
        }
    }

    // A live metrics server implies reporting: /report.json serves the
    // reporter's in-progress publications.
    let mut reporter = (show_prof || profiling || metrics_out.is_some() || serving.is_some()).then(|| {
        let mut rep = tgl_harness::RunReporter::start();
        rep.set_meta("model", mk.label());
        rep.set_meta("dataset", spec.kind.name());
        rep.set_meta("framework", fw.label());
        rep.set_meta(
            "placement",
            if host_resident { "cpu-to-gpu" } else { "all-on-gpu" },
        );
        rep.set_meta_num("seed", args.get_or("seed", 42u64) as f64);
        rep.set_meta_num("scale", args.get_or("scale", 2u64) as f64);
        rep.set_meta_num("batch", train_cfg.batch_size as f64);
        rep.set_meta_num("threads", tgl_runtime::current_threads() as f64);
        rep.set_meta("kernel", tgl_tensor::kernel::mode().label());
        rep
    });

    let mut log = MetricLog::for_training();
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), train_cfg.lr);
    let mut best_val = 0.0f64;
    for e in 0..train_cfg.epochs {
        let s = trainer.train_epoch(model.as_mut(), &ctx, &split, &mut opt, e);
        best_val = best_val.max(s.val_ap);
        log.record_epoch(e, &s);
        println!(
            "epoch {:>2}: loss {:.4}  val AP {:5.2}%  ({:.2}s cpu)",
            e + 1,
            s.loss,
            s.val_ap * 100.0,
            s.train_time_s
        );
        if let Some(rep) = reporter.as_mut() {
            rep.record_epoch(e, &s);
            if show_prof {
                if let Some(epoch_report) = rep.epochs_so_far().last() {
                    for (phase, secs) in &epoch_report.phases_s {
                        println!("    {phase:<14} {secs:8.3}s");
                    }
                }
            }
        }
    }
    let (test_ap, test_s) = trainer.evaluate(model.as_mut(), &ctx, split.test.clone());
    println!("test AP {:.2}% ({test_s:.2}s cpu)", test_ap * 100.0);
    if train_cfg.epochs > 0 {
        println!("best val AP {:.2}%", best_val * 100.0);
    }

    if let Some(rep) = reporter {
        let report = rep.finish(test_ap, test_s);
        if let Some(path) = &metrics_out {
            report.save(path).expect("write run report");
            println!("run report written to {}", path.display());
        }
        if profiling {
            tgl_obs::profile::enable(false);
            let roof = tgl_harness::profrep::Roofline::detect();
            let rows = tgl_harness::profrep::analyze(&report.profile, &roof);
            print!(
                "{}",
                tgl_harness::profrep::render_table(&rows, &roof, args.get_or("profile-top", 15))
            );
            let coverage =
                tgl_harness::profrep::phase_coverage(&report.profile, &report.phases_total_s);
            print!("{}", tgl_harness::profrep::render_coverage(&coverage));
            if let Some(path) = &profile_out {
                std::fs::write(path, tgl_obs::profile::to_json(&report.profile))
                    .expect("write op profile");
                println!("op profile written to {}", path.display());
            }
        }
    }
    if trace_out.is_some() || critpath {
        // Drain once; both consumers read the same span set (the run
        // report's critpath section already took its own snapshot).
        let spans = tglite::obs::trace::take();
        tglite::obs::trace::enable(false);
        if let Some(path) = &trace_out {
            std::fs::write(path, tglite::obs::trace::to_chrome_json(&spans)).expect("write trace");
            println!(
                "chrome trace with {} spans written to {}",
                spans.len(),
                path.display()
            );
        }
        if critpath {
            let analysis = tgl_obs::critpath::analyze(&spans);
            print!("{}", tgl_obs::critpath::render_table(&analysis));
            if let Some(path) = &critpath_out {
                std::fs::write(path, tgl_obs::critpath::to_json(&analysis))
                    .expect("write critpath artifact");
                println!("critpath artifact written to {}", path.display());
            }
        }
    }
    if let Some(path) = args.get("flight-out") {
        std::fs::write(path, tgl_obs::flight::to_json("request")).expect("write flight dump");
        println!("flight dump written to {path}");
    }
    if insight {
        print!(
            "{}",
            tgl_obs::insight::render_table(args.get_or("insight-top", 8))
        );
        if let Some(path) = &insight_out {
            std::fs::write(path, tgl_obs::insight::to_json()).expect("write insight artifact");
            println!("insight artifact written to {}", path.display());
        }
    }

    if let Some(path) = args.get("csv") {
        log.save(std::path::Path::new(path)).expect("write csv");
        println!("metrics written to {path}");
    }
    if let Some(path) = args.get("ckpt") {
        if !eval_only {
            model.save(std::path::Path::new(path)).expect("write checkpoint");
            println!("checkpoint written to {path}");
        }
    }
    tgl_device::set_transfer_model(TransferModel::disabled());
    if tgl_obs::alert::installed() {
        for st in tgl_obs::alert::status() {
            println!(
                "alert {}: fired {}x on {} ({})",
                st.rule.name,
                st.fired_total,
                st.rule.metric,
                if st.firing { "firing" } else { "ok" }
            );
        }
    }
    if serving.is_some() && args.has_flag("serve-hold") {
        println!("holding for scrape: GET /quit to release (10 min timeout)");
        tgl_obs::expo::wait_for_quit(std::time::Duration::from_secs(600));
    }
    tgl_obs::timeseries::stop_sampler();
}

fn get_cmd(args: &Args) {
    // Accept `--addr <ADDR> --path <PATH>` or the positional form
    // `tgl get <ADDR> <PATH>` (positionals arrive concatenated, so the
    // first '/' splits address from path).
    let (addr, path) = match (args.get("addr"), args.get("path")) {
        (Some(a), p) => (a.to_string(), p.unwrap_or("/").to_string()),
        (None, _) => {
            let extra = args.get("_extra").unwrap_or_else(|| {
                eprintln!("usage: tgl get <ADDR> <PATH>  (e.g. tgl get 127.0.0.1:9184 /metrics)");
                std::process::exit(2);
            });
            match extra.find('/') {
                Some(i) => (extra[..i].to_string(), extra[i..].to_string()),
                None => (extra.to_string(), "/".to_string()),
            }
        }
    };
    let (code, body) = tgl_obs::expo::http_get(&addr, &path).unwrap_or_else(|e| {
        eprintln!("{addr}{path}: {e}");
        std::process::exit(1);
    });
    print!("{body}");
    if code != 200 {
        eprintln!("{addr}{path}: HTTP {code}");
        std::process::exit(1);
    }
}

fn promcheck_cmd(args: &Args) {
    let addr = args.get("addr").or_else(|| args.get("_extra")).unwrap_or_else(|| {
        eprintln!("usage: tgl promcheck <ADDR> [--min-hist <N>] [--require <NAME[,NAME...]>] [--quit]");
        std::process::exit(2);
    });
    let (code, body) = tgl_obs::expo::http_get(addr, "/metrics").unwrap_or_else(|e| {
        eprintln!("{addr}/metrics: {e}");
        std::process::exit(1);
    });
    if code != 200 {
        eprintln!("{addr}/metrics: HTTP {code}");
        std::process::exit(1);
    }
    let summary = promcheck::validate(&body).unwrap_or_else(|e| {
        eprintln!("{addr}/metrics: malformed exposition: {e}");
        std::process::exit(1);
    });
    println!(
        "{addr}/metrics: {} samples ({} counters, {} gauges, {} histograms)",
        summary.samples, summary.counters, summary.gauges, summary.histograms
    );
    for name in &summary.histogram_names {
        println!("  histogram {name}");
    }

    let (hcode, hbody) = tgl_obs::expo::http_get(addr, "/healthz").unwrap_or_else(|e| {
        eprintln!("{addr}/healthz: {e}");
        std::process::exit(1);
    });
    if !(hcode == 200 || hcode == 503) || tgl_data::Json::parse(&hbody).is_err() {
        eprintln!("{addr}/healthz: HTTP {hcode} with malformed body {hbody:?}");
        std::process::exit(1);
    }
    println!("{addr}/healthz: HTTP {hcode} {}", hbody.trim());

    let min_hist = args.get_or("min-hist", 0usize);
    if summary.histograms < min_hist {
        eprintln!(
            "{addr}/metrics: {} histogram families, expected at least {min_hist}",
            summary.histograms
        );
        std::process::exit(1);
    }
    if let Some(required) = args.get("require") {
        let missing: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty() && !summary.has_family(n))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "{addr}/metrics: missing required families: {}",
                missing.join(", ")
            );
            std::process::exit(1);
        }
        println!("{addr}/metrics: all required families present ({required})");
    }
    if args.has_flag("quit") {
        tgl_obs::expo::http_get(addr, "/quit").ok();
    }
}

fn jsoncheck_cmd(args: &Args) {
    let path = args.get("file").or_else(|| args.get("_extra")).unwrap_or_else(|| {
        eprintln!("usage: tgl jsoncheck --file <PATH>");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let v = match tgl_data::Json::parse(&text) {
        Ok(v) => {
            // Round-trip: rendered output must parse back identically,
            // guarding the writer as well as the reader.
            let rendered = v.render();
            match tgl_data::Json::parse(&rendered) {
                Ok(back) if back == v => {
                    println!("{path}: valid JSON ({} bytes)", text.len());
                    // Artifacts that declare a known schema also get
                    // their shape checked, not just their syntax.
                    match schema::validate(&v) {
                        Ok(Some(name)) => println!("{path}: schema {name} ok"),
                        Ok(None) => {}
                        Err(e) => {
                            eprintln!("{path}: schema violation: {e}");
                            std::process::exit(1);
                        }
                    }
                    v
                }
                _ => {
                    eprintln!("{path}: round-trip mismatch");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("{path}: invalid JSON: {e}");
            std::process::exit(1);
        }
    };

    if !args.has_flag("trend") {
        return;
    }
    let old_path = args.get("old").unwrap_or_else(|| {
        eprintln!("usage: tgl jsoncheck --file <NEW> --trend --old <OLD> [--budget <PCT>]");
        std::process::exit(2);
    });
    let old_text = std::fs::read_to_string(old_path).unwrap_or_else(|e| {
        eprintln!("{old_path}: {e}");
        std::process::exit(1);
    });
    let old = tgl_data::Json::parse(&old_text).unwrap_or_else(|e| {
        eprintln!("{old_path}: invalid JSON: {e}");
        std::process::exit(1);
    });
    let rows = trend::compare(&old, &v);
    // A renamed or dropped series is worth a look but not a failure —
    // the regression budget only covers series both documents share.
    for key in trend::missing_series(&old, &v) {
        println!("trend: warning: series {key} missing from {path}");
    }
    if rows.is_empty() {
        println!("trend: no wall-time series in common with {old_path}");
        return;
    }
    print!("{}", trend::render_table(&rows));
    let budget = args.get_or("budget", 25.0f64);
    let worst = trend::worst_regression(&rows);
    if worst > budget {
        eprintln!("trend: worst regression {worst:+.1}% exceeds budget {budget:.0}%");
        std::process::exit(1);
    }
    println!("trend: worst regression {worst:+.1}% within budget {budget:.0}%");
}

fn generate_cmd(args: &Args) {
    let spec = spec(args);
    let (g, stats) = generate(&spec);
    let default = format!("{}.csv", spec.kind.name().to_lowercase());
    let out = args.get("out").unwrap_or(&default);
    save_csv(&g, std::path::Path::new(out)).expect("write dataset");
    println!(
        "wrote {} ({} nodes, {} edges, {:.0}% repeat interactions)",
        out,
        stats.num_nodes,
        stats.num_edges,
        stats.repeat_fraction * 100.0
    );
}

fn stats_cmd(args: &Args) {
    let spec = spec(args);
    let (g, ds) = generate(&spec);
    let ts = temporal_stats(&g);
    println!("{} (scale {}):", spec.kind.name(), args.get_or("scale", 2usize));
    println!("  |V| = {}   |E| = {}", ds.num_nodes, ds.num_edges);
    println!("  d_v = {}   d_e = {}   max(t) = {:.2e}", ds.d_node, ds.d_edge, ds.max_t);
    println!("  repeat edges:        {:.1}%", ts.repeat_edge_fraction * 100.0);
    println!("  distinct Δt:         {:.1}%", ts.distinct_delta_fraction * 100.0);
    println!("  mean inter-event Δt: {:.3e}", ts.mean_interevent);
    println!("  degree: mean {:.1}, max {}, gini {:.2}", ts.mean_degree, ts.max_degree, ts.degree_gini);
    println!("  isolated nodes:      {:.1}%", ts.isolated_fraction * 100.0);
}
