//! `tgl` — command-line training and evaluation for the TGLite
//! reproduction, mirroring the paper artifact's workflow
//! (`./exp/tgat.sh -d wiki --epochs 3 --move --opt-all`).
//!
//! ```sh
//! tgl train --model tgat --dataset wiki --epochs 3 --opt-all --move
//! tgl train --model tgn --dataset reddit --framework tgl
//! tgl generate --dataset lastfm --out lastfm.csv
//! tgl stats --dataset gdelt
//! tgl --help
//! ```

mod args;

use std::sync::Arc;

use args::Args;
use tgl_data::{generate, save_csv, temporal_stats, DatasetKind, DatasetSpec, Split};
use tgl_device::{Device, TransferModel};
use tgl_harness::runner::build_model;
use tgl_harness::{Framework, MetricLog, ModelKind, TrainConfig, Trainer};
use tgl_models::ModelConfig;
use tglite::TContext;

const HELP: &str = "\
tgl — TGLite reproduction command line

USAGE:
    tgl <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    train      train a model and report per-epoch loss/AP + test AP
    eval       inference-only run over the test split
    generate   write a synthetic dataset's edge list as CSV
    stats      print a dataset's structural statistics

COMMON OPTIONS:
    --dataset <wiki|mooc|reddit|lastfm|wikitalk|gdelt>   (default wiki)
    --scale <N>        divide dataset node/edge counts by N (default 2)
    --model <jodie|apan|tgat|tgn>                        (default tgat)
    --framework <tgl|tglite|tglite-opt>                  (default tglite-opt)
    --epochs <N>       training epochs                   (default 3)
    --batch <N>        batch size                        (default 200)
    --lr <F>           Adam learning rate                (default 1e-3)
    --seed <N>         parameter seed                    (default 42)
    --move             keep data on CPU host and move per batch
                       (the paper's CPU-to-GPU case; default all-on-GPU)
    --opt-all          shorthand: framework = tglite-opt
    --csv <PATH>       write per-epoch metrics as CSV
    --ckpt <PATH>      save final parameters to a checkpoint
    --out <PATH>       output path for `generate` (default <dataset>.csv)
";

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    if args.has_flag("help") || args.subcommand().is_none() {
        print!("{HELP}");
        return;
    }
    match args.subcommand().unwrap() {
        "train" => train(&args, false),
        "eval" => train(&args, true),
        "generate" => generate_cmd(&args),
        "stats" => stats_cmd(&args),
        other => {
            eprintln!("unknown subcommand {other:?}\n");
            print!("{HELP}");
            std::process::exit(2);
        }
    }
}

fn dataset_kind(args: &Args) -> DatasetKind {
    let name = args.get("dataset").unwrap_or("wiki");
    DatasetKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown dataset {name:?} (try wiki/mooc/reddit/lastfm/wikitalk/gdelt)");
            std::process::exit(2);
        })
}

fn spec(args: &Args) -> DatasetSpec {
    DatasetSpec::of(dataset_kind(args)).scaled_down(args.get_or("scale", 2))
}

fn model_kind(args: &Args) -> ModelKind {
    let name = args.get("model").unwrap_or("tgat");
    ModelKind::all()
        .into_iter()
        .find(|k| k.label().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            eprintln!("unknown model {name:?} (try jodie/apan/tgat/tgn)");
            std::process::exit(2);
        })
}

fn framework(args: &Args) -> Framework {
    if args.has_flag("opt-all") {
        return Framework::TgLiteOpt;
    }
    match args.get("framework").unwrap_or("tglite-opt") {
        "tgl" => Framework::Tgl,
        "tglite" => Framework::TgLite,
        "tglite-opt" => Framework::TgLiteOpt,
        other => {
            eprintln!("unknown framework {other:?} (try tgl/tglite/tglite-opt)");
            std::process::exit(2);
        }
    }
}

fn train(args: &Args, eval_only: bool) {
    let spec = spec(args);
    let fw = framework(args);
    let mk = model_kind(args);
    let host_resident = args.has_flag("move");
    println!(
        "{} {} on {} ({} nodes, {} edges), {}",
        if eval_only { "evaluating" } else { "training" },
        mk.label(),
        spec.kind.name(),
        spec.num_nodes(),
        spec.n_edges,
        if host_resident { "CPU-to-GPU" } else { "all-on-GPU" }
    );

    let (g, _) = generate(&spec);
    if !host_resident {
        if let Some(f) = g.node_feats() {
            g.set_node_feats(f.to(Device::Accel));
        }
        if let Some(f) = g.edge_feats() {
            g.set_edge_feats(f.to(Device::Accel));
        }
    }
    tgl_device::set_transfer_model(if host_resident {
        TransferModel::scaled(TransferModel::pcie_v100(), 400.0)
    } else {
        TransferModel::disabled()
    });
    let ctx = TContext::with_device(Arc::clone(&g), Device::Accel);
    let split = Split::standard(&g);
    let model_cfg = ModelConfig {
        emb_dim: args.get_or("emb-dim", 32),
        time_dim: args.get_or("time-dim", 16),
        heads: args.get_or("heads", 2),
        n_layers: args.get_or("layers", 2),
        n_neighbors: args.get_or("neighbors", 10),
        mailbox_slots: args.get_or("mailbox", 10),
    };
    let mut model = build_model(fw, mk, &ctx, model_cfg, args.get_or("seed", 42));
    let train_cfg = TrainConfig {
        batch_size: args.get_or("batch", 200),
        epochs: if eval_only { 0 } else { args.get_or("epochs", 3) },
        lr: args.get_or("lr", 1e-3),
        seed: args.get_or("seed", 42) ^ 0x5eed,
    };
    let (neg_lo, neg_hi) = if spec.bipartite() {
        (spec.n_src as u32, spec.num_nodes() as u32)
    } else {
        (0, spec.num_nodes() as u32)
    };
    let trainer = Trainer::new(train_cfg, neg_lo, neg_hi);

    if eval_only {
        if let Some(path) = args.get("ckpt") {
            model.load(std::path::Path::new(path)).expect("load checkpoint");
            println!("loaded checkpoint {path}");
        }
    }

    let mut log = MetricLog::for_training();
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), train_cfg.lr);
    let mut best_val = 0.0f64;
    for e in 0..train_cfg.epochs {
        let s = trainer.train_epoch(model.as_mut(), &ctx, &split, &mut opt, e);
        best_val = best_val.max(s.val_ap);
        log.record_epoch(e, &s);
        println!(
            "epoch {:>2}: loss {:.4}  val AP {:5.2}%  ({:.2}s cpu)",
            e + 1,
            s.loss,
            s.val_ap * 100.0,
            s.train_time_s
        );
    }
    let (test_ap, test_s) = trainer.evaluate(model.as_mut(), &ctx, split.test.clone());
    println!("test AP {:.2}% ({test_s:.2}s cpu)", test_ap * 100.0);
    if train_cfg.epochs > 0 {
        println!("best val AP {:.2}%", best_val * 100.0);
    }

    if let Some(path) = args.get("csv") {
        log.save(std::path::Path::new(path)).expect("write csv");
        println!("metrics written to {path}");
    }
    if let Some(path) = args.get("ckpt") {
        if !eval_only {
            model.save(std::path::Path::new(path)).expect("write checkpoint");
            println!("checkpoint written to {path}");
        }
    }
    tgl_device::set_transfer_model(TransferModel::disabled());
}

fn generate_cmd(args: &Args) {
    let spec = spec(args);
    let (g, stats) = generate(&spec);
    let default = format!("{}.csv", spec.kind.name().to_lowercase());
    let out = args.get("out").unwrap_or(&default);
    save_csv(&g, std::path::Path::new(out)).expect("write dataset");
    println!(
        "wrote {} ({} nodes, {} edges, {:.0}% repeat interactions)",
        out,
        stats.num_nodes,
        stats.num_edges,
        stats.repeat_fraction * 100.0
    );
}

fn stats_cmd(args: &Args) {
    let spec = spec(args);
    let (g, ds) = generate(&spec);
    let ts = temporal_stats(&g);
    println!("{} (scale {}):", spec.kind.name(), args.get_or("scale", 2usize));
    println!("  |V| = {}   |E| = {}", ds.num_nodes, ds.num_edges);
    println!("  d_v = {}   d_e = {}   max(t) = {:.2e}", ds.d_node, ds.d_edge, ds.max_t);
    println!("  repeat edges:        {:.1}%", ts.repeat_edge_fraction * 100.0);
    println!("  distinct Δt:         {:.1}%", ts.distinct_delta_fraction * 100.0);
    println!("  mean inter-event Δt: {:.3e}", ts.mean_interevent);
    println!("  degree: mean {:.1}, max {}, gini {:.2}", ts.mean_degree, ts.max_degree, ts.degree_gini);
    println!("  isolated nodes:      {:.1}%", ts.isolated_fraction * 100.0);
}
