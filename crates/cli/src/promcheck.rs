//! Validation of Prometheus text exposition documents (format 0.0.4),
//! backing `tgl promcheck`. Std-only, like the server it checks.
//!
//! The checks are structural: every sample line must parse, carry a
//! legal metric name and label syntax, and belong to a `# TYPE`-declared
//! family; histogram families must expose consistent
//! `_bucket`/`_sum`/`_count` series with cumulative bucket counts
//! ending at the `+Inf` total.

use std::collections::HashMap;

/// What a well-formed exposition document contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpoSummary {
    /// Counter families (`# TYPE ... counter`).
    pub counters: usize,
    /// Gauge families.
    pub gauges: usize,
    /// Histogram families.
    pub histograms: usize,
    /// Total sample lines.
    pub samples: usize,
    /// Names of the histogram families, in document order.
    pub histogram_names: Vec<String>,
    /// Names of every declared family (any type), in document order.
    pub family_names: Vec<String>,
}

impl ExpoSummary {
    /// Whether a family of the given exposed name was declared.
    pub fn has_family(&self, name: &str) -> bool {
        self.family_names.iter().any(|n| n == name)
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "NaN") || v.parse::<f64>().is_ok()
}

/// Splits a sample line into (name, labels-or-empty, value).
fn split_sample(line: &str) -> Option<(&str, &str, &str)> {
    if let Some(open) = line.find('{') {
        let close = line.rfind('}')?;
        if close < open {
            return None;
        }
        let value = line[close + 1..].trim();
        Some((&line[..open], &line[open + 1..close], value))
    } else {
        let (name, value) = line.split_once(' ')?;
        Some((name, "", value.trim()))
    }
}

fn valid_labels(labels: &str) -> bool {
    if labels.is_empty() {
        return true;
    }
    labels.split(',').all(|pair| {
        let Some((k, v)) = pair.split_once('=') else {
            return false;
        };
        valid_metric_name(k.trim()) && {
            let v = v.trim();
            v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
        }
    })
}

/// Validates an exposition document, returning a summary of its
/// contents.
///
/// # Errors
///
/// Returns a description of the first malformed line or inconsistent
/// family found.
pub fn validate(doc: &str) -> Result<ExpoSummary, String> {
    let mut summary = ExpoSummary::default();
    // family name -> declared type
    let mut families: HashMap<String, String> = HashMap::new();
    // histogram name -> (bucket cumulative counts, sum seen, count value)
    let mut hist_state: HashMap<String, (Vec<u64>, bool, Option<u64>)> = HashMap::new();

    for (idx, line) in doc.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(ty), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!("line {lineno}: malformed TYPE comment: {line:?}"));
            };
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: illegal family name {name:?}"));
            }
            if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: unknown metric type {ty:?}"));
            }
            if families.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {lineno}: duplicate TYPE for {name:?}"));
            }
            summary.family_names.push(name.to_string());
            match ty {
                "counter" => summary.counters += 1,
                "gauge" => summary.gauges += 1,
                "histogram" => {
                    summary.histograms += 1;
                    summary.histogram_names.push(name.to_string());
                }
                _ => {}
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }

        let Some((name, labels, value)) = split_sample(line) else {
            return Err(format!("line {lineno}: malformed sample: {line:?}"));
        };
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: illegal metric name {name:?}"));
        }
        if !valid_labels(labels) {
            return Err(format!("line {lineno}: malformed labels in {line:?}"));
        }
        if !valid_value(value) {
            return Err(format!("line {lineno}: malformed value {value:?}"));
        }
        summary.samples += 1;

        // Resolve the family: exact match, or a histogram series suffix.
        let family = if families.contains_key(name) {
            name.to_string()
        } else {
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| name.strip_suffix(suf))
                .unwrap_or(name);
            if families.get(base).map(String::as_str) == Some("histogram") {
                base.to_string()
            } else {
                return Err(format!(
                    "line {lineno}: sample {name:?} has no TYPE declaration"
                ));
            }
        };

        if families[&family] == "histogram" {
            let state = hist_state.entry(family.clone()).or_default();
            if let Some(series) = name.strip_prefix(family.as_str()) {
                match series {
                    "_bucket" => {
                        let n: u64 = value.parse().map_err(|_| {
                            format!("line {lineno}: non-integer bucket count {value:?}")
                        })?;
                        state.0.push(n);
                    }
                    "_sum" => state.1 = true,
                    "_count" => {
                        state.2 = Some(value.parse().map_err(|_| {
                            format!("line {lineno}: non-integer count {value:?}")
                        })?)
                    }
                    _ => {}
                }
            }
        }
    }

    for (name, (buckets, has_sum, count)) in &hist_state {
        if buckets.is_empty() || !has_sum || count.is_none() {
            return Err(format!(
                "histogram {name:?}: missing _bucket/_sum/_count series"
            ));
        }
        if buckets.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!("histogram {name:?}: bucket counts not cumulative"));
        }
        if buckets.last() != count.as_ref() {
            return Err(format!(
                "histogram {name:?}: +Inf bucket {} != count {}",
                buckets.last().unwrap(),
                count.unwrap()
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# TYPE tgl_cache_hits_total counter
tgl_cache_hits_total 42
# TYPE tgl_health_loss gauge
tgl_health_loss 0.61
# TYPE tgl_step_latency_ns histogram
tgl_step_latency_ns_bucket{le=\"1024\"} 3
tgl_step_latency_ns_bucket{le=\"+Inf\"} 5
tgl_step_latency_ns_sum 12345
tgl_step_latency_ns_count 5
";

    #[test]
    fn accepts_well_formed_document() {
        let s = validate(GOOD).expect("valid");
        assert_eq!(s.counters, 1);
        assert_eq!(s.gauges, 1);
        assert_eq!(s.histograms, 1);
        assert_eq!(s.samples, 6);
        assert_eq!(s.histogram_names, vec!["tgl_step_latency_ns"]);
        assert_eq!(
            s.family_names,
            vec!["tgl_cache_hits_total", "tgl_health_loss", "tgl_step_latency_ns"]
        );
        assert!(s.has_family("tgl_health_loss"));
        assert!(!s.has_family("tgl_missing"));
    }

    #[test]
    fn rejects_undeclared_samples() {
        let err = validate("tgl_orphan 1\n").unwrap_err();
        assert!(err.contains("no TYPE"), "{err}");
    }

    #[test]
    fn rejects_bad_values_and_names() {
        assert!(validate("# TYPE x gauge\nx banana\n").is_err());
        assert!(validate("# TYPE 9x gauge\n").is_err());
        assert!(validate("# TYPE x pie\n").is_err());
    }

    #[test]
    fn rejects_non_cumulative_histograms() {
        let doc = "\
# TYPE h histogram
h_bucket{le=\"2\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 1
h_count 3
";
        let err = validate(doc).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
    }

    #[test]
    fn rejects_count_mismatch() {
        let doc = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 3
h_sum 1
h_count 4
";
        let err = validate(doc).unwrap_err();
        assert!(err.contains("!= count"), "{err}");
    }

    #[test]
    fn accepts_inf_values_and_labels() {
        let doc = "# TYPE g gauge\ng{kind=\"x\",mode=\"y\"} +Inf\n";
        assert!(validate(doc).is_ok());
        assert!(validate("# TYPE g gauge\ng{kind=x} 1\n").is_err());
    }

    /// Reads a golden fixture from the workspace `tests/fixtures/`
    /// directory.
    fn fixture(name: &str) -> String {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/fixtures")
            .join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
    }

    #[test]
    fn golden_good_snapshot_passes() {
        let s = validate(&fixture("promcheck_good.txt"))
            .unwrap_or_else(|e| panic!("known-good snapshot rejected: {e}"));
        assert_eq!(s.counters, 3);
        assert_eq!(s.gauges, 2);
        assert_eq!(s.histograms, 2);
        assert_eq!(
            s.histogram_names,
            vec!["tgl_step_latency_ns", "tgl_gemm_latency_ns"]
        );
        // 3 counter + 2 gauge + (5+3) bucket + 2 sum + 2 count lines.
        assert_eq!(s.samples, 17);
    }

    #[test]
    fn golden_bad_snapshot_is_rejected() {
        let err = validate(&fixture("promcheck_bad.txt"))
            .expect_err("known-bad snapshot must fail validation");
        assert!(err.contains("not cumulative"), "unexpected diagnostic: {err}");
        assert!(err.contains("tgl_step_latency_ns"), "{err}");
    }

    #[test]
    fn real_render_passes() {
        tgl_obs::counter!("promcheck.test.events").add(2);
        tgl_obs::gauge!("promcheck.test.level").set(1.25);
        tgl_obs::histogram!("promcheck.test.lat_ns").record_always(300);
        tgl_obs::histogram!("promcheck.test.lat_ns").record_always(90_000);
        let doc = tgl_obs::expo::render_prometheus();
        let s = validate(&doc).unwrap_or_else(|e| panic!("render invalid: {e}\n{doc}"));
        assert!(s
            .histogram_names
            .iter()
            .any(|n| n == "tgl_promcheck_test_lat_ns"));
    }
}
