//! Synthetic CTDG datasets for the TGLite reproduction.
//!
//! The paper evaluates on six real datasets (Table 3): Wiki, MOOC,
//! Reddit, LastFM (standard), WikiTalk and GDELT (large-scale). Those
//! datasets are not redistributable here, so this crate provides
//! *seeded synthetic generators* parameterized to match each dataset's
//! statistical shape at a configurable scale:
//!
//! * bipartite interaction structure (users × items) for
//!   Wiki/MOOC/Reddit/LastFM, power-law communication for WikiTalk,
//!   dense event streams for GDELT;
//! * heavy repeat-interaction redundancy (the property the paper's
//!   dedup/cache optimizations exploit) controlled per dataset;
//! * quantized timestamps for GDELT (the property time-precomputation
//!   exploits: few distinct time deltas);
//! * cluster-structured node features plus recency structure so that
//!   temporal models have real signal to learn (AP well above 0.5).
//!
//! See `DESIGN.md` for the substitution rationale.

mod generator;
mod io;
pub mod json;
mod sampling;
mod specs;
mod split;
pub mod stats;

pub use generator::{generate, DatasetStats};
pub use json::Json;
pub use io::{load_csv, save_csv};
pub use sampling::NegativeSampler;
pub use specs::{DatasetKind, DatasetSpec};
pub use split::{chronological_split, Split};
pub use stats::{temporal_stats, TemporalStats};
