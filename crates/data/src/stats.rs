//! Temporal-graph statistics.
//!
//! Quantifies the structural properties the paper's optimizations
//! exploit: repeat-interaction redundancy (dedup/cache), duplicate
//! time deltas (time precomputation), and degree/recency skew. Used by
//! the dataset benches and useful for characterizing user datasets.

use std::collections::{HashMap, HashSet};

use tgl_graph::TemporalGraph;

/// Structural statistics of a CTDG edge stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalStats {
    /// Fraction of edges whose `(src, dst)` pair appeared before.
    pub repeat_edge_fraction: f64,
    /// Distinct inter-event time deltas divided by edge count (low ⇒
    /// time-precomputation reuses many `Φ(Δt)` rows).
    pub distinct_delta_fraction: f64,
    /// Mean time between consecutive events.
    pub mean_interevent: f64,
    /// Maximum undirected degree.
    pub max_degree: usize,
    /// Mean undirected degree.
    pub mean_degree: f64,
    /// Gini coefficient of the degree distribution (0 = uniform,
    /// → 1 = concentrated on few hubs).
    pub degree_gini: f64,
    /// Fraction of nodes that never appear as an endpoint.
    pub isolated_fraction: f64,
}

/// Computes [`TemporalStats`] over a graph's full edge stream.
///
/// # Panics
///
/// Panics on a graph with no edges.
pub fn temporal_stats(g: &TemporalGraph) -> TemporalStats {
    assert!(g.num_edges() > 0, "stats of an empty stream");
    let e = g.num_edges();

    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(e);
    let mut repeats = 0usize;
    let mut degree = vec![0usize; g.num_nodes()];
    for i in 0..e {
        let (s, d, _) = g.edge(i);
        if !seen.insert((s, d)) {
            repeats += 1;
        }
        degree[s as usize] += 1;
        degree[d as usize] += 1;
    }

    let times = g.times();
    let mut deltas: HashMap<u64, usize> = HashMap::new();
    let mut total_delta = 0.0f64;
    for w in times.windows(2) {
        let d = w[1] - w[0];
        total_delta += d;
        *deltas.entry(d.to_bits()).or_default() += 1;
    }
    let n_deltas = (e - 1).max(1);

    let isolated = degree.iter().filter(|&&d| d == 0).count();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    let mean_degree = degree.iter().sum::<usize>() as f64 / g.num_nodes() as f64;

    TemporalStats {
        repeat_edge_fraction: repeats as f64 / e as f64,
        distinct_delta_fraction: deltas.len() as f64 / n_deltas as f64,
        mean_interevent: total_delta / n_deltas as f64,
        max_degree,
        mean_degree,
        degree_gini: gini(&degree),
        isolated_fraction: isolated as f64 / g.num_nodes() as f64,
    }
}

/// Gini coefficient of a non-negative integer distribution.
fn gini(values: &[usize]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
    v.sort_by(f64::total_cmp);
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * x)
        .sum();
    weighted / (n as f64 * total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetKind, DatasetSpec};

    #[test]
    fn repeat_fraction_counts_duplicates() {
        let g = TemporalGraph::from_edges(
            3,
            vec![(0, 1, 1.0), (0, 1, 2.0), (1, 2, 3.0), (0, 1, 4.0)],
        );
        let s = temporal_stats(&g);
        assert!((s.repeat_edge_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quantized_times_collapse_deltas() {
        // All deltas equal -> one distinct delta over e-1 gaps.
        let g = TemporalGraph::from_edges(2, (0..10).map(|i| (0, 1, i as f64)).collect());
        let s = temporal_stats(&g);
        assert!((s.distinct_delta_fraction - 1.0 / 9.0).abs() < 1e-9);
        assert!((s.mean_interevent - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degree_stats() {
        let g = TemporalGraph::from_edges(4, vec![(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0)]);
        let s = temporal_stats(&g);
        assert_eq!(s.max_degree, 3);
        assert!((s.mean_degree - 1.5).abs() < 1e-9);
        assert_eq!(s.isolated_fraction, 0.0);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-9, "uniform => 0");
        assert!(gini(&[0, 0, 0, 100]) > 0.7, "concentrated => high");
    }

    #[test]
    fn gdelt_shape_has_fewer_distinct_deltas_than_wiki() {
        let (gd, _) = generate(&DatasetSpec::of(DatasetKind::Gdelt).scaled_down(10));
        let (wk, _) = generate(&DatasetSpec::of(DatasetKind::Wiki).scaled_down(10));
        let sg = temporal_stats(&gd);
        let sw = temporal_stats(&wk);
        assert!(
            sg.distinct_delta_fraction < sw.distinct_delta_fraction,
            "GDELT quantization should collapse deltas: {} vs {}",
            sg.distinct_delta_fraction,
            sw.distinct_delta_fraction
        );
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn empty_graph_panics() {
        temporal_stats(&TemporalGraph::from_edges(2, vec![]));
    }
}
