//! Chronological train/validation/test splits.

use std::ops::Range;

use tgl_graph::TemporalGraph;

/// Edge-index ranges for the standard chronological 70/15/15 split
/// used by the TGNN literature (and TGL's training scripts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training edges (earliest).
    pub train: Range<usize>,
    /// Validation edges.
    pub val: Range<usize>,
    /// Test edges (latest).
    pub test: Range<usize>,
}

/// Splits a graph's chronological edge list into train/val/test by the
/// given fractions.
///
/// # Panics
///
/// Panics unless `0 < train_frac`, `0 <= val_frac`, and
/// `train_frac + val_frac < 1`.
pub fn chronological_split(g: &TemporalGraph, train_frac: f64, val_frac: f64) -> Split {
    assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
    let e = g.num_edges();
    let t_end = (e as f64 * train_frac) as usize;
    let v_end = (e as f64 * (train_frac + val_frac)) as usize;
    Split {
        train: 0..t_end,
        val: t_end..v_end,
        test: v_end..e,
    }
}

impl Split {
    /// The standard 70/15/15 split.
    pub fn standard(g: &TemporalGraph) -> Split {
        chronological_split(g, 0.70, 0.15)
    }

    /// Iterates `(start..end)` batch ranges of `batch_size` over a
    /// split portion, including a final partial batch.
    pub fn batches(range: &Range<usize>, batch_size: usize) -> impl Iterator<Item = Range<usize>> {
        let (start, end) = (range.start, range.end);
        (start..end)
            .step_by(batch_size.max(1))
            .map(move |s| s..(s + batch_size).min(end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n_edges: usize) -> TemporalGraph {
        TemporalGraph::from_edges(
            4,
            (0..n_edges).map(|i| (0, 1, i as f64)).collect(),
        )
    }

    #[test]
    fn fractions_partition_edges() {
        let g = graph(100);
        let s = Split::standard(&g);
        assert_eq!(s.train, 0..70);
        assert_eq!(s.val, 70..85);
        assert_eq!(s.test, 85..100);
    }

    #[test]
    fn split_is_chronological() {
        let g = graph(50);
        let s = chronological_split(&g, 0.5, 0.2);
        assert!(s.train.end <= s.val.start || s.val.is_empty());
        assert!(s.val.end <= s.test.start || s.test.is_empty());
        assert_eq!(s.test.end, 50);
    }

    #[test]
    fn batches_cover_range_exactly() {
        let r = 10..47;
        let ranges: Vec<_> = Split::batches(&r, 10).collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 10..20);
        assert_eq!(ranges[3], 40..47, "final partial batch included");
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 37);
    }

    #[test]
    #[should_panic]
    fn bad_fractions_panic() {
        chronological_split(&graph(10), 0.9, 0.2);
    }
}
