//! A minimal recursive JSON value: render + parse, std-only.
//!
//! `DatasetSpec` keeps its flat hand-rolled serializer; this module is
//! the general-purpose counterpart used by run reports, benchmark
//! output, and the CI round-trip check (`tgl jsoncheck`). It supports
//! the full JSON data model with the usual reproduction-repo
//! simplifications: numbers are `f64`, objects preserve insertion
//! order (stable output), no streaming.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (duplicate keys are kept as
    /// written; lookups return the first match).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(pairs: Vec<(String, Json)>) -> Json {
        Json::Obj(pairs)
    }

    /// Member lookup on objects (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a fraction so counters
                    // stay readable; anything else uses shortest-f64.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value. The whole input must be one JSON
    /// document (trailing non-whitespace is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates render as the replacement char;
                            // report text never contains them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Str("a\"b\n".into()).render(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn round_trips_nested_structure() {
        let v = Json::obj(vec![
            ("name".into(), Json::Str("run \"42\"".into())),
            ("epochs".into(), Json::Num(3.0)),
            (
                "phases".into(),
                Json::Arr(vec![
                    Json::obj(vec![
                        ("phase".into(), Json::Str("sample".into())),
                        ("secs".into(), Json::Num(0.125)),
                    ]),
                    Json::Null,
                    Json::Bool(false),
                ]),
            ),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("epochs").and_then(Json::as_num), Some(3.0));
        assert_eq!(
            back.get("phases").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn parses_whitespace_escapes_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e1 , \"\\u0041\\t\\\\\" ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::Num(1.0));
        assert_eq!(arr[1], Json::Num(-25.0));
        assert_eq!(arr[2], Json::Str("A\t\\".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn nonfinite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn parses_dataset_spec_output() {
        // The flat spec serializer's output is valid input here, tying
        // the two JSON paths together.
        let spec = crate::DatasetSpec::of(crate::DatasetKind::Wiki);
        let v = Json::parse(&spec.to_json()).unwrap();
        assert!(v.get("kind").and_then(Json::as_str).is_some());
    }
}
