//! CSV persistence for generated datasets (edges only; features are
//! regenerated from the spec's seed).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use tgl_graph::{NodeId, TemporalGraph, Time};

/// Writes a graph's edge list as `src,dst,time` CSV with a header.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_csv(g: &TemporalGraph, path: &Path) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "src,dst,time")?;
    for i in 0..g.num_edges() {
        let (s, d, t) = g.edge(i);
        writeln!(w, "{s},{d},{t}")?;
    }
    w.flush()
}

/// Loads an edge-list CSV produced by [`save_csv`] (or any
/// `src,dst,time` file with a header row) into a graph with
/// `num_nodes` nodes.
///
/// # Errors
///
/// Returns an I/O error for unreadable files, or
/// `InvalidData` for malformed rows.
pub fn load_csv(path: &Path, num_nodes: usize) -> std::io::Result<Arc<TemporalGraph>> {
    let r = BufReader::new(std::fs::File::open(path)?);
    let mut edges: Vec<(NodeId, NodeId, Time)> = Vec::new();
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        if ln == 0 || line.trim().is_empty() {
            continue; // header / blank
        }
        let mut parts = line.split(',');
        let parse_err =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("line {}: bad {what}", ln + 1));
        let s: NodeId = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("src"))?;
        let d: NodeId = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("dst"))?;
        let t: Time = parts
            .next()
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| parse_err("time"))?;
        edges.push((s, d, t));
    }
    Ok(Arc::new(TemporalGraph::from_edges(num_nodes, edges)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetKind, DatasetSpec};

    #[test]
    fn roundtrip_preserves_edges() {
        let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(50);
        let (g, _) = generate(&spec);
        let dir = std::env::temp_dir().join("tgl-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wiki_roundtrip.csv");
        save_csv(&g, &path).unwrap();
        let g2 = load_csv(&path, spec.num_nodes()).unwrap();
        assert_eq!(g.src(), g2.src());
        assert_eq!(g.dst(), g2.dst());
        assert_eq!(g.times(), g2.times());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_row_is_invalid_data() {
        let dir = std::env::temp_dir().join("tgl-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "src,dst,time\n1,notanumber,3\n").unwrap();
        let err = load_csv(&path, 5).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_csv(Path::new("/definitely/not/here.csv"), 1).is_err());
    }
}
