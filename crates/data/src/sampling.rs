//! Negative edge sampling for link-prediction training.

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::{Rng, SeedableRng};
use tgl_graph::NodeId;

/// Draws negative destination nodes uniformly from the destination
/// universe (the item partition for bipartite datasets, all nodes
/// otherwise) — the standard corruption scheme for temporal link
/// prediction.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    lo: NodeId,
    hi: NodeId,
    rng: StdRng,
}

impl NegativeSampler {
    /// Creates a sampler over destination ids `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(lo: NodeId, hi: NodeId, seed: u64) -> NegativeSampler {
        assert!(lo < hi, "empty negative range");
        NegativeSampler {
            lo,
            hi,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sampler matching a dataset spec's destination universe.
    pub fn for_spec(spec: &crate::DatasetSpec, seed: u64) -> NegativeSampler {
        if spec.bipartite() {
            NegativeSampler::new(spec.n_src as NodeId, spec.num_nodes() as NodeId, seed)
        } else {
            NegativeSampler::new(0, spec.num_nodes() as NodeId, seed)
        }
    }

    /// Draws `n` negatives.
    pub fn draw(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.rng.gen_range(self.lo..self.hi)).collect()
    }

    /// Draws `n` *historical* negatives: with probability `p_hist`
    /// each negative is a destination that actually appeared earlier
    /// in the stream (drawn from `seen`), otherwise uniform. This is
    /// the harder corruption scheme of recent temporal-graph
    /// benchmarks; pass the destinations observed so far.
    pub fn draw_historical(&mut self, n: usize, seen: &[NodeId], p_hist: f64) -> Vec<NodeId> {
        (0..n)
            .map(|_| {
                if !seen.is_empty() && self.rng.gen_bool(p_hist) {
                    seen[self.rng.gen_range(0..seen.len())]
                } else {
                    self.rng.gen_range(self.lo..self.hi)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, DatasetSpec};

    #[test]
    fn draws_within_range() {
        let mut s = NegativeSampler::new(10, 20, 0);
        let v = s.draw(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&n| (10..20).contains(&n)));
        // Covers the range reasonably.
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert!(distinct.len() >= 9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NegativeSampler::new(0, 100, 7).draw(50);
        let b = NegativeSampler::new(0, 100, 7).draw(50);
        assert_eq!(a, b);
        let c = NegativeSampler::new(0, 100, 8).draw(50);
        assert_ne!(a, c);
    }

    #[test]
    fn for_spec_respects_bipartite_partition() {
        let spec = DatasetSpec::of(DatasetKind::Wiki);
        let mut s = NegativeSampler::for_spec(&spec, 0);
        assert!(s.draw(200).iter().all(|&n| (n as usize) >= spec.n_src));
        let spec2 = DatasetSpec::of(DatasetKind::WikiTalk);
        let mut s2 = NegativeSampler::for_spec(&spec2, 0);
        assert!(s2.draw(200).iter().all(|&n| (n as usize) < spec2.num_nodes()));
    }

    #[test]
    fn historical_negatives_come_from_seen_set() {
        let mut s = NegativeSampler::new(0, 1000, 1);
        let seen = vec![7u32, 7, 7, 42];
        let v = s.draw_historical(500, &seen, 1.0);
        assert!(v.iter().all(|n| seen.contains(n)));
        // Popular destinations dominate (frequency-proportional).
        let sevens = v.iter().filter(|&&n| n == 7).count();
        assert!(sevens > 250, "got {sevens}");
    }

    #[test]
    fn historical_with_zero_prob_is_uniform() {
        let mut s = NegativeSampler::new(10, 20, 2);
        let v = s.draw_historical(100, &[999], 0.0);
        assert!(v.iter().all(|&n| (10..20).contains(&n)));
    }

    #[test]
    fn historical_empty_seen_falls_back() {
        let mut s = NegativeSampler::new(10, 20, 3);
        let v = s.draw_historical(50, &[], 1.0);
        assert!(v.iter().all(|&n| (10..20).contains(&n)));
    }

    #[test]
    #[should_panic(expected = "empty negative range")]
    fn empty_range_panics() {
        NegativeSampler::new(5, 5, 0);
    }
}
