//! Dataset specifications mirroring the paper's Table 3 shapes.

/// Which of the paper's six benchmark datasets a spec models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Wikipedia user–page edits (bipartite, high repetition).
    Wiki,
    /// MOOC student–courseware interactions (bipartite, few items).
    Mooc,
    /// Reddit user–subreddit posts (bipartite).
    Reddit,
    /// LastFM user–song listens (bipartite, very heavy repetition,
    /// long time span).
    Lastfm,
    /// Wikipedia Talk-page messages (non-bipartite, power-law).
    WikiTalk,
    /// GDELT global event stream (dense, quantized timestamps).
    Gdelt,
}

impl DatasetKind {
    /// All six kinds in the paper's presentation order.
    pub fn all() -> [DatasetKind; 6] {
        [
            DatasetKind::Wiki,
            DatasetKind::Mooc,
            DatasetKind::Reddit,
            DatasetKind::Lastfm,
            DatasetKind::WikiTalk,
            DatasetKind::Gdelt,
        ]
    }

    /// The paper's four standard (small) benchmarks.
    pub fn standard() -> [DatasetKind; 4] {
        [
            DatasetKind::Wiki,
            DatasetKind::Mooc,
            DatasetKind::Reddit,
            DatasetKind::Lastfm,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Wiki => "Wiki",
            DatasetKind::Mooc => "MOOC",
            DatasetKind::Reddit => "Reddit",
            DatasetKind::Lastfm => "LastFM",
            DatasetKind::WikiTalk => "WikiTalk",
            DatasetKind::Gdelt => "GDELT",
        }
    }
}

/// Parameters of a synthetic CTDG generator run.
///
/// The `spec(kind, scale)` constructor reproduces the paper's Table 3
/// shapes divided by `scale` (features divided by a milder factor so
/// that models keep meaningful capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which paper dataset this models.
    pub kind: DatasetKind,
    /// Number of "user" nodes (all nodes for non-bipartite kinds).
    pub n_src: usize,
    /// Number of "item" nodes (0 for non-bipartite kinds).
    pub n_items: usize,
    /// Number of temporal edges.
    pub n_edges: usize,
    /// Node feature width (`d_v`).
    pub d_node: usize,
    /// Edge feature width (`d_e`).
    pub d_edge: usize,
    /// Largest timestamp (`max(t)`).
    pub max_t: f64,
    /// Probability that a user's next interaction repeats a previous
    /// partner (drives dedup/cache effectiveness).
    pub repeat_prob: f64,
    /// Zipf skew for partner popularity.
    pub zipf_s: f64,
    /// Number of latent clusters for features/affinity (learnability).
    pub n_clusters: usize,
    /// Timestamp quantum (0 = continuous). GDELT uses a 15-minute
    /// event cadence, giving few distinct time deltas.
    pub time_quantum: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The default reproduction-scale spec for `kind`: Table 3 shapes
    /// scaled down to run in minutes on a CPU-only machine
    /// (node/edge counts ≈ ÷20 for standard sets, more for the large
    /// ones; feature dims ≈ ÷5).
    pub fn of(kind: DatasetKind) -> DatasetSpec {
        match kind {
            // Wiki: 9227 nodes / 157k edges / d_v=d_e=172 / max_t 2.7e6
            DatasetKind::Wiki => DatasetSpec {
                kind,
                n_src: 320,
                n_items: 140,
                n_edges: 7_800,
                d_node: 32,
                d_edge: 32,
                max_t: 2.7e6,
                repeat_prob: 0.75,
                zipf_s: 1.1,
                n_clusters: 8,
                time_quantum: 0.0,
                seed: 0x0005_1571,
            },
            // MOOC: 7144 nodes / 412k edges / d=128
            DatasetKind::Mooc => DatasetSpec {
                kind,
                n_src: 300,
                n_items: 60,
                n_edges: 16_000,
                d_node: 24,
                d_edge: 24,
                max_t: 2.6e6,
                repeat_prob: 0.8,
                zipf_s: 1.2,
                n_clusters: 6,
                time_quantum: 0.0,
                seed: 0x0003_00c2,
            },
            // Reddit: 10984 nodes / 672k edges / d=172
            DatasetKind::Reddit => DatasetSpec {
                kind,
                n_src: 440,
                n_items: 110,
                n_edges: 26_000,
                d_node: 32,
                d_edge: 32,
                max_t: 2.7e6,
                repeat_prob: 0.7,
                zipf_s: 1.15,
                n_clusters: 10,
                time_quantum: 0.0,
                seed: 0x0008_edd3,
            },
            // LastFM: 1980 nodes / 1.29M edges / d=128 / max_t 1.4e8
            DatasetKind::Lastfm => DatasetSpec {
                kind,
                n_src: 70,
                n_items: 30,
                n_edges: 48_000,
                d_node: 24,
                d_edge: 24,
                max_t: 1.4e8,
                repeat_prob: 0.85,
                zipf_s: 1.05,
                n_clusters: 5,
                time_quantum: 0.0,
                seed: 0x0001_a5f4,
            },
            // WikiTalk: 1.14M nodes / 7.8M edges / d=128 / max_t 1.2e9
            DatasetKind::WikiTalk => DatasetSpec {
                kind,
                n_src: 11_400,
                n_items: 0,
                n_edges: 60_000,
                d_node: 16,
                d_edge: 16,
                max_t: 1.2e9,
                repeat_prob: 0.55,
                zipf_s: 1.3,
                n_clusters: 12,
                time_quantum: 0.0,
                seed: 0x0007_17a5,
            },
            // GDELT: 16682 nodes / 191M edges / d_v=413, d_e=186 /
            // max_t 1.8e5 (two orders of magnitude more edges than
            // the standard sets; quantized event cadence).
            DatasetKind::Gdelt => DatasetSpec {
                kind,
                n_src: 600,
                n_items: 0,
                n_edges: 120_000,
                d_node: 40,
                d_edge: 18,
                max_t: 1.8e5,
                repeat_prob: 0.6,
                zipf_s: 1.1,
                n_clusters: 15,
                time_quantum: 900.0,
                seed: 0x0009_de16,
            },
        }
    }

    /// Returns a copy with node and edge counts divided by `factor`
    /// (for quick tests and CI-speed benches).
    pub fn scaled_down(mut self, factor: usize) -> DatasetSpec {
        assert!(factor >= 1);
        self.n_src = (self.n_src / factor).max(8);
        self.n_items = if self.n_items > 0 {
            (self.n_items / factor).max(4)
        } else {
            0
        };
        self.n_edges = (self.n_edges / factor).max(64);
        self
    }

    /// Whether the generator draws bipartite (user→item) edges.
    pub fn bipartite(&self) -> bool {
        self.n_items > 0
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.n_src + self.n_items
    }

    /// Serializes the spec as a single JSON object.
    ///
    /// Hand-rolled (no serde in the workspace): every field is a number
    /// except `kind`, which is the variant name as a string. Floats are
    /// written with enough precision to round-trip exactly.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"kind\":\"{}\",\"n_src\":{},\"n_items\":{},\"n_edges\":{},",
                "\"d_node\":{},\"d_edge\":{},\"max_t\":{:?},\"repeat_prob\":{:?},",
                "\"zipf_s\":{:?},\"n_clusters\":{},\"time_quantum\":{:?},\"seed\":{}}}"
            ),
            self.kind.variant_name(),
            self.n_src,
            self.n_items,
            self.n_edges,
            self.d_node,
            self.d_edge,
            self.max_t,
            self.repeat_prob,
            self.zipf_s,
            self.n_clusters,
            self.time_quantum,
            self.seed,
        )
    }

    /// Parses a spec from the JSON produced by [`DatasetSpec::to_json`]
    /// (key order and insignificant whitespace are flexible).
    pub fn from_json(text: &str) -> Result<DatasetSpec, String> {
        let fields = parse_flat_object(text)?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let usize_of = |key: &str| -> Result<usize, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("field `{key}`: {e}"))
        };
        let f64_of = |key: &str| -> Result<f64, String> {
            get(key)?
                .parse()
                .map_err(|e| format!("field `{key}`: {e}"))
        };
        Ok(DatasetSpec {
            kind: DatasetKind::from_variant_name(get("kind")?)?,
            n_src: usize_of("n_src")?,
            n_items: usize_of("n_items")?,
            n_edges: usize_of("n_edges")?,
            d_node: usize_of("d_node")?,
            d_edge: usize_of("d_edge")?,
            max_t: f64_of("max_t")?,
            repeat_prob: f64_of("repeat_prob")?,
            zipf_s: f64_of("zipf_s")?,
            n_clusters: usize_of("n_clusters")?,
            time_quantum: f64_of("time_quantum")?,
            seed: get("seed")?
                .parse()
                .map_err(|e| format!("field `seed`: {e}"))?,
        })
    }
}

impl DatasetKind {
    /// The enum variant identifier used in JSON (`Wiki`, `Mooc`, ...).
    pub fn variant_name(&self) -> &'static str {
        match self {
            DatasetKind::Wiki => "Wiki",
            DatasetKind::Mooc => "Mooc",
            DatasetKind::Reddit => "Reddit",
            DatasetKind::Lastfm => "Lastfm",
            DatasetKind::WikiTalk => "WikiTalk",
            DatasetKind::Gdelt => "Gdelt",
        }
    }

    /// Inverse of [`DatasetKind::variant_name`].
    pub fn from_variant_name(name: &str) -> Result<DatasetKind, String> {
        DatasetKind::all()
            .into_iter()
            .find(|k| k.variant_name() == name)
            .ok_or_else(|| format!("unknown dataset kind `{name}`"))
    }
}

/// Splits a flat (non-nested) JSON object into `(key, raw value)` pairs.
/// Values keep their text form; string quotes are stripped. Enough JSON
/// for [`DatasetSpec`] — rejects nesting rather than mis-parsing it.
fn parse_flat_object(text: &str) -> Result<Vec<(String, String)>, String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
        .ok_or("expected a JSON object")?;
    let mut fields = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| format!("expected `key: value`, got `{part}`"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if value.starts_with('{') || value.starts_with('[') {
            return Err(format!("field `{key}`: nested values are not supported"));
        }
        fields.push((key, value.trim_matches('"').to_string()));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_kinds_have_specs() {
        for kind in DatasetKind::all() {
            let s = DatasetSpec::of(kind);
            assert!(s.n_edges > 0);
            assert!(s.num_nodes() > 0);
            assert!(s.max_t > 0.0);
            assert_eq!(s.kind, kind);
        }
    }

    #[test]
    fn relative_shape_matches_table3_ordering() {
        // Edge-count ordering from the paper:
        // Wiki < MOOC < Reddit < LastFM < WikiTalk < GDELT.
        let e: Vec<usize> = DatasetKind::all()
            .iter()
            .map(|&k| DatasetSpec::of(k).n_edges)
            .collect();
        assert!(e.windows(2).all(|w| w[0] < w[1]), "{e:?}");
        // GDELT has far more edges per node than the rest.
        let g = DatasetSpec::of(DatasetKind::Gdelt);
        let w = DatasetSpec::of(DatasetKind::Wiki);
        assert!(
            g.n_edges / g.num_nodes() > 10 * w.n_edges / w.num_nodes(),
            "GDELT density should dominate"
        );
        // WikiTalk has the most nodes.
        assert!(DatasetSpec::of(DatasetKind::WikiTalk).num_nodes()
            > DatasetKind::all()
                .iter()
                .filter(|&&k| k != DatasetKind::WikiTalk)
                .map(|&k| DatasetSpec::of(k).num_nodes())
                .max()
                .unwrap());
    }

    #[test]
    fn scaled_down_shrinks() {
        let s = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
        assert!(s.n_edges <= DatasetSpec::of(DatasetKind::Wiki).n_edges / 10);
        assert!(s.n_src >= 8);
    }

    #[test]
    fn bipartite_flags() {
        assert!(DatasetSpec::of(DatasetKind::Wiki).bipartite());
        assert!(!DatasetSpec::of(DatasetKind::WikiTalk).bipartite());
        assert!(!DatasetSpec::of(DatasetKind::Gdelt).bipartite());
    }

    #[test]
    fn json_round_trips_every_kind() {
        for kind in DatasetKind::all() {
            let spec = DatasetSpec::of(kind);
            let json = spec.to_json();
            let back = DatasetSpec::from_json(&json).expect("parse");
            assert_eq!(spec, back, "round-trip for {kind:?}: {json}");
        }
    }

    #[test]
    fn json_parse_tolerates_whitespace_and_order() {
        let text = r#"{ "seed": 9, "kind": "Mooc", "n_src": 1, "n_items": 2,
            "n_edges": 3, "d_node": 4, "d_edge": 5, "max_t": 6.5,
            "repeat_prob": 0.5, "zipf_s": 1.5, "n_clusters": 7,
            "time_quantum": 0.0 }"#;
        let spec = DatasetSpec::from_json(text).expect("parse");
        assert_eq!(spec.kind, DatasetKind::Mooc);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.max_t, 6.5);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(DatasetSpec::from_json("not json").is_err());
        assert!(DatasetSpec::from_json("{}").is_err());
        assert!(DatasetSpec::from_json("{\"kind\":\"Nope\"}").is_err());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DatasetKind::Wiki.name(), "Wiki");
        assert_eq!(DatasetKind::Gdelt.name(), "GDELT");
        assert_eq!(DatasetKind::standard().len(), 4);
    }
}
