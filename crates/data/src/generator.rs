//! Seeded synthetic CTDG generation.

use std::sync::Arc;

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::{Rng, SeedableRng};
use tgl_graph::{NodeId, TemporalGraph, Time};
use tgl_tensor::Tensor;

use crate::DatasetSpec;
#[cfg(test)]
use crate::DatasetKind;

/// The Table 3 row of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Node count (`|V|`).
    pub num_nodes: usize,
    /// Edge count (`|E|`).
    pub num_edges: usize,
    /// Node feature width (`d_v`).
    pub d_node: usize,
    /// Edge feature width (`d_e`).
    pub d_edge: usize,
    /// Largest timestamp (`max(t)`).
    pub max_t: Time,
    /// Fraction of edges that repeat an earlier (src, dst) pair — the
    /// redundancy the dedup/cache operators exploit.
    pub repeat_fraction: f64,
}

/// Generates the CTDG described by `spec`, with cluster-structured
/// node features and random edge features (the paper's Table 3 notes
/// that node features are randomly generated for the standard
/// datasets, and edge features for MOOC/LastFM/WikiTalk too).
///
/// The edge process: each arrival picks a source (Zipf-weighted), then
/// with probability `repeat_prob` repeats one of that source's recent
/// partners, otherwise picks a fresh partner biased toward the
/// source's latent cluster. Timestamps arrive uniformly over
/// `[0, max_t]` (quantized to `time_quantum` when nonzero) and are
/// sorted.
pub fn generate(spec: &DatasetSpec) -> (Arc<TemporalGraph>, DatasetStats) {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n_nodes = spec.num_nodes();

    // Latent cluster per node, used for features and edge affinity.
    let clusters: Vec<usize> = (0..n_nodes).map(|_| rng.gen_range(0..spec.n_clusters)).collect();

    // Zipf-ish popularity weights for partner selection.
    let partner_lo = if spec.bipartite() { spec.n_src } else { 0 };
    let partner_hi = n_nodes;
    let n_partners = partner_hi - partner_lo;
    let weights: Vec<f64> = (0..n_partners)
        .map(|i| 1.0 / ((i + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total_w: f64 = weights.iter().sum();
    // Cumulative distribution for O(log n) sampling.
    let cdf: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / total_w;
            Some(*acc)
        })
        .collect();
    // Random permutation so popular partners are spread across ids.
    let mut partner_perm: Vec<usize> = (0..n_partners).collect();
    for i in (1..n_partners).rev() {
        partner_perm.swap(i, rng.gen_range(0..=i));
    }

    let draw_partner = |rng: &mut StdRng, src_cluster: usize, clusters: &[usize]| -> NodeId {
        // Bias toward same-cluster partners: rejection sample a few
        // times before accepting anything.
        for attempt in 0..4 {
            let u: f64 = rng.gen();
            let idx = cdf.partition_point(|&c| c < u).min(n_partners - 1);
            let node = partner_lo + partner_perm[idx];
            if attempt == 3 || clusters[node] == src_cluster {
                return node as NodeId;
            }
        }
        unreachable!()
    };

    // Timestamps: sorted uniform arrivals.
    let mut times: Vec<Time> = (0..spec.n_edges)
        .map(|_| {
            let t = rng.gen_range(0.0..spec.max_t);
            if spec.time_quantum > 0.0 {
                (t / spec.time_quantum).floor() * spec.time_quantum
            } else {
                t
            }
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // Pin the last timestamp to max_t so the Table 3 column is exact.
    if let Some(last) = times.last_mut() {
        *last = spec.max_t;
    }

    // Source selection: Zipf over sources too.
    let src_weights: Vec<f64> = (0..spec.n_src)
        .map(|i| 1.0 / ((i + 1) as f64).powf(spec.zipf_s * 0.7))
        .collect();
    let src_total: f64 = src_weights.iter().sum();
    let src_cdf: Vec<f64> = src_weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w / src_total;
            Some(*acc)
        })
        .collect();
    let mut src_perm: Vec<usize> = (0..spec.n_src).collect();
    for i in (1..spec.n_src).rev() {
        src_perm.swap(i, rng.gen_range(0..=i));
    }

    let mut history: Vec<Vec<NodeId>> = vec![Vec::new(); spec.n_src];
    let mut seen_pairs = std::collections::HashSet::new();
    let mut repeats = 0usize;
    let mut edges: Vec<(NodeId, NodeId, Time)> = Vec::with_capacity(spec.n_edges);
    for &t in &times {
        let u: f64 = rng.gen();
        let sidx = src_cdf.partition_point(|&c| c < u).min(spec.n_src - 1);
        let src = src_perm[sidx] as NodeId;
        let hist = &history[src as usize];
        let dst = if !hist.is_empty() && rng.gen_bool(spec.repeat_prob) {
            // Recency-weighted repeat: prefer recent partners.
            let k = hist.len();
            let j = k - 1 - (rng.gen_range(0.0f64..1.0).powi(2) * k as f64) as usize % k;
            hist[j.min(k - 1)]
        } else {
            let mut d = draw_partner(&mut rng, clusters[src as usize], &clusters);
            if !spec.bipartite() {
                // Avoid self-loops.
                while d == src {
                    d = draw_partner(&mut rng, clusters[src as usize], &clusters);
                }
            }
            d
        };
        if !seen_pairs.insert((src, dst)) {
            repeats += 1;
        }
        history[src as usize].push(dst);
        if history[src as usize].len() > 64 {
            history[src as usize].remove(0);
        }
        edges.push((src, dst, t));
    }

    let graph = Arc::new(TemporalGraph::from_edges(n_nodes, edges));

    // Node features: cluster centroid + noise (gives static signal).
    let centroids: Vec<Vec<f32>> = (0..spec.n_clusters)
        .map(|_| {
            (0..spec.d_node)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect()
        })
        .collect();
    let mut nfeat = Vec::with_capacity(n_nodes * spec.d_node);
    for c in clusters.iter().take(n_nodes) {
        for &cj in centroids[*c].iter().take(spec.d_node) {
            nfeat.push(cj + rng.gen_range(-0.3f32..0.3));
        }
    }
    graph.set_node_feats(Tensor::from_vec(nfeat, [n_nodes, spec.d_node]));

    // Edge features: random (as the paper's † notes).
    let efeat: Vec<f32> = (0..graph.num_edges() * spec.d_edge)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    graph.set_edge_feats(Tensor::from_vec(efeat, [graph.num_edges(), spec.d_edge]));

    let stats = DatasetStats {
        num_nodes: n_nodes,
        num_edges: graph.num_edges(),
        d_node: spec.d_node,
        d_edge: spec.d_edge,
        max_t: graph.max_time(),
        repeat_fraction: repeats as f64 / spec.n_edges as f64,
    };
    (graph, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: DatasetKind) -> (Arc<TemporalGraph>, DatasetStats) {
        generate(&DatasetSpec::of(kind).scaled_down(10))
    }

    #[test]
    fn shapes_match_spec() {
        let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
        let (g, stats) = generate(&spec);
        assert_eq!(g.num_nodes(), spec.num_nodes());
        assert_eq!(g.num_edges(), spec.n_edges);
        assert_eq!(stats.d_node, spec.d_node);
        assert_eq!(g.node_feat_dim(), spec.d_node);
        assert_eq!(g.edge_feat_dim(), spec.d_edge);
        assert_eq!(stats.max_t, spec.max_t);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::of(DatasetKind::Mooc).scaled_down(20);
        let (g1, s1) = generate(&spec);
        let (g2, s2) = generate(&spec);
        assert_eq!(g1.src(), g2.src());
        assert_eq!(g1.dst(), g2.dst());
        assert_eq!(g1.times(), g2.times());
        assert_eq!(s1, s2);
        assert_eq!(
            g1.node_feats().unwrap().to_vec(),
            g2.node_feats().unwrap().to_vec()
        );
    }

    #[test]
    fn bipartite_edges_cross_partition() {
        let spec = DatasetSpec::of(DatasetKind::Reddit).scaled_down(10);
        let (g, _) = generate(&spec);
        for (&s, &d) in g.src().iter().zip(g.dst()) {
            assert!((s as usize) < spec.n_src, "src {s} out of user range");
            assert!((d as usize) >= spec.n_src, "dst {d} not an item");
        }
    }

    #[test]
    fn non_bipartite_has_no_self_loops() {
        let (g, _) = quick(DatasetKind::WikiTalk);
        assert!(g.src().iter().zip(g.dst()).all(|(s, d)| s != d));
    }

    #[test]
    fn times_sorted_and_bounded() {
        let (g, stats) = quick(DatasetKind::Lastfm);
        assert!(g.times().windows(2).all(|w| w[0] <= w[1]));
        assert!(stats.max_t <= DatasetSpec::of(DatasetKind::Lastfm).max_t);
    }

    #[test]
    fn repeat_heavy_datasets_have_high_redundancy() {
        let (_, lastfm) = quick(DatasetKind::Lastfm);
        let (_, wikitalk) = quick(DatasetKind::WikiTalk);
        assert!(
            lastfm.repeat_fraction > 0.5,
            "LastFM-shape should repeat heavily, got {}",
            lastfm.repeat_fraction
        );
        assert!(
            lastfm.repeat_fraction > wikitalk.repeat_fraction,
            "LastFM redundancy should exceed WikiTalk"
        );
    }

    #[test]
    fn gdelt_deltas_are_quantized() {
        let (g, _) = quick(DatasetKind::Gdelt);
        let q = DatasetSpec::of(DatasetKind::Gdelt).time_quantum;
        // All but the pinned final timestamp lie on the quantum grid.
        let n = g.num_edges();
        for &t in &g.times()[..n - 1] {
            assert!(
                (t / q - (t / q).round()).abs() < 1e-9,
                "timestamp {t} not on {q} grid"
            );
        }
        // Few distinct deltas relative to edges (time-precompute wins).
        let distinct: std::collections::HashSet<u64> = g.times()[..n - 1]
            .windows(2)
            .map(|w| (w[1] - w[0]).to_bits())
            .collect();
        assert!(
            distinct.len() * 4 < n,
            "expected quantized deltas to collapse: {} distinct / {n}",
            distinct.len()
        );
    }
}
