//! Quickstart: train TGAT on a Wiki-shaped CTDG for temporal link
//! prediction, then evaluate on the held-out chronological test split.
//!
//! ```sh
//! cargo run --release -p tgl-examples --bin quickstart
//! # with observability:
//! cargo run --release -p tgl-examples --bin quickstart -- \
//!     --prof --trace-out trace.json --metrics-out report.json
//! ```
//!
//! This walks through the full TGLite workflow from the paper:
//! build a `TGraph`, wrap a `TContext`, construct a model from the
//! framework's composable pieces, and drive epochs with the harness.
//! The observability flags mirror the `tgl` CLI: `--prof` prints the
//! per-phase breakdown, `--profile` prints the per-operator roofline
//! table (with `--profile-out <PATH>` writing the `tgl-profile/v1`
//! JSON artifact), `--trace-out` writes a Chrome trace (open in
//! chrome://tracing or ui.perfetto.dev), `--metrics-out` writes a
//! structured JSON run report, `--critpath` prints the per-stage
//! critical-path table after the run (`--critpath-out <PATH>` writes
//! the `tgl-critpath/v1` artifact), `--flight-out <PATH>` writes a
//! flight-recorder dump (`--flight off` disables the always-on
//! recorder), `--serve-metrics <ADDR>` serves live `/metrics`,
//! `/healthz`, `/report.json`, `/critpath.json`, `/flight.json`,
//! `/timeseries.json`, `/alerts.json`, and the live `/dashboard`
//! page over HTTP while training (`--serve-hold` keeps serving until
//! `GET /quit`; serving also enables the time-series store and a
//! background sampler so the dashboard stays live), and `--move`
//! exercises the CPU-to-GPU placement (per-batch metered transfers).
//! `--slo <PATH>` (or `TGL_SLO`) loads SLO alert rules evaluated each
//! training step against the retained series, with firings routed
//! through the `--health <off|warn|fail>` policy (`TGL_HEALTH`) and
//! summarized at end of run; `--lr <F>` overrides the Adam learning
//! rate (handy for deliberately diverging a run to watch an alert
//! fire). `--insight` turns on the model & data introspection layer
//! (per-parameter-group gradient/weight norms and update ratios,
//! dead-activation fractions, memory staleness, neighbor time-delta
//! spread, negative-sampling collisions, dedup effectiveness) and
//! prints the per-layer table at end of run; `--insight-out <PATH>`
//! also writes the `tgl-insight/v1` artifact.
//! `--kernel <exact|fast>` (or `TGL_KERNEL`) selects the tensor
//! kernel contract: `exact` (default) is bitwise identical to the
//! scalar reference kernels, `fast` enables the FMA/vector-exp SIMD
//! paths with tolerance-level differences.
//! `--pipeline <N>` (or `TGL_PIPELINE`) turns on the pipelined
//! trainer: a sampler stage prefetches up to N batches (negative
//! draws, neighbor sampling, transfer staging) ahead of the compute
//! stage over a bounded channel; 0 (the default) is the sequential
//! reference, and losses are bitwise identical at any depth.

use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_device::{Device, TransferModel};
use tgl_harness::{RunReporter, TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tglite::TContext;

/// Minimal `--key value` / `--flag` scan, so the example stays free of
/// the CLI crate.
fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let scale: usize = arg_value("--scale").map_or(2, |v| v.parse().expect("--scale"));
    let epochs: usize = arg_value("--epochs").map_or(3, |v| v.parse().expect("--epochs"));
    let custom_lr = arg_value("--lr");
    let lr: f32 = custom_lr.as_deref().map_or(1e-3, |v| v.parse().expect("--lr"));
    let show_prof = arg_flag("--prof");
    let trace_out = arg_value("--trace-out").map(std::path::PathBuf::from);
    let metrics_out = arg_value("--metrics-out").map(std::path::PathBuf::from);
    let profile_out = arg_value("--profile-out").map(std::path::PathBuf::from);
    let profiling = arg_flag("--profile") || profile_out.is_some();
    let critpath_out = arg_value("--critpath-out").map(std::path::PathBuf::from);
    let critpath = arg_flag("--critpath") || critpath_out.is_some();
    let host_resident = arg_flag("--move");
    tgl_harness::install_flight_hook();
    if let Some(v) = arg_value("--flight") {
        tglite::obs::flight::enable(!matches!(v.as_str(), "off" | "0"));
    }
    if let Some(mode) = arg_value("--kernel") {
        let m = tgl_tensor::kernel::parse(&mode).expect("--kernel: use exact or fast");
        tgl_tensor::kernel::set_mode(m);
    }
    println!(
        "kernel: {} mode, simd {}",
        tgl_tensor::kernel::mode().label(),
        tgl_tensor::kernel::simd_label()
    );
    if trace_out.is_some() || critpath {
        tglite::obs::trace::enable(true);
    }
    if profiling {
        tglite::obs::profile::enable(true);
    }
    if let Some(policy) = arg_value("--health") {
        // Through the environment so the trainer picks the policy up.
        std::env::set_var("TGL_HEALTH", policy);
    }
    let serving = if let Some(addr) = arg_value("--serve-metrics") {
        let bound = tglite::obs::expo::start(&addr).expect("--serve-metrics bind");
        println!("metrics server listening on http://{bound}/metrics");
        Some(bound)
    } else {
        tglite::obs::expo::start_from_env().inspect(|bound| {
            println!("metrics server listening on http://{bound}/metrics");
        })
    };
    // SLO alert rules: installed before the first step; implies the
    // time-series store the rules evaluate against.
    let slo_path =
        arg_value("--slo").or_else(|| std::env::var("TGL_SLO").ok().filter(|p| !p.is_empty()));
    if let Some(path) = &slo_path {
        let rules = tglite::obs::alert::RuleSet::from_file(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("--slo {path}: {e}"));
        println!("slo: loaded {} alert rule(s) from {path}", rules.rules.len());
        tglite::obs::alert::install(rules);
        tglite::obs::timeseries::enable(true);
    }
    if serving.is_some() {
        // The live /dashboard needs retained series and a background
        // sampler so it keeps moving between (and after) train steps.
        tglite::obs::timeseries::enable(true);
        tglite::obs::timeseries::start_sampler(500);
    }
    let insight_out = arg_value("--insight-out").map(std::path::PathBuf::from);
    let insight = arg_flag("--insight") || insight_out.is_some();
    if insight {
        // Insight series flow through the time-series store, so the
        // flag implies retention (same as --slo).
        tglite::obs::insight::enable(true);
        tglite::obs::timeseries::enable(true);
    }

    // 1. A continuous-time dynamic graph. Here: a synthetic stream
    //    shaped like the paper's Wiki dataset (bipartite user–page
    //    edits with heavy repeat interactions). Swap in
    //    `tgl_data::load_csv` for your own `src,dst,time` data.
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(scale);
    let (graph, stats) = generate(&spec);
    println!(
        "graph: {} nodes, {} edges, d_v={}, d_e={}, {:.0}% repeat interactions",
        stats.num_nodes,
        stats.num_edges,
        stats.d_node,
        stats.d_edge,
        stats.repeat_fraction * 100.0
    );

    // 2. The TGLite runtime context: target device, pinned pool,
    //    embedding/time caches. With `--move`, features stay on the
    //    host while compute targets the accelerator, so every batch
    //    crosses the (simulated, scaled) PCIe link — the paper's
    //    CPU-to-GPU placement.
    let ctx = if host_resident {
        tgl_device::set_transfer_model(TransferModel::scaled(TransferModel::pcie_v100(), 400.0));
        TContext::with_device(graph.clone(), Device::Accel)
    } else {
        TContext::new(graph.clone())
    };

    // 3. A model composed from TGLite building blocks: 2 layers of
    //    temporal attention over 10 recent neighbors, with the paper's
    //    "TGLite+opt" operators (preload/dedup/cache/time-precompute).
    let mut model = Tgat::new(
        &ctx,
        ModelConfig {
            emb_dim: 32,
            time_dim: 16,
            heads: 2,
            n_layers: 2,
            n_neighbors: 10,
            mailbox_slots: 1,
        },
        OptFlags::all(),
        42,
    );
    println!(
        "model: {} with {} parameters",
        model.name(),
        model
            .parameters()
            .iter()
            .map(tglite::tensor::Tensor::numel)
            .sum::<usize>()
    );

    // 4. Chronological 70/15/15 split and the training loop, with an
    //    optional run reporter snapshotting phases + counters per epoch.
    let split = Split::standard(&graph);
    let mut trainer = Trainer::new(
        TrainConfig {
            batch_size: 200,
            epochs,
            lr,
            seed: 0,
        },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    );
    // `--pipeline N` overlaps sampling/staging with compute over a
    // bounded channel of depth N; losses stay bitwise identical to the
    // sequential default (depth 0).
    if let Some(depth) = arg_value("--pipeline") {
        trainer = trainer.with_pipeline(depth.parse().expect("--pipeline"));
    }
    if trainer.pipeline_depth() > 0 {
        println!("pipeline: sampler stage prefetching up to {} batches", trainer.pipeline_depth());
    }
    let mut reporter = (show_prof || profiling || metrics_out.is_some() || serving.is_some()).then(|| {
        let mut rep = RunReporter::start();
        rep.set_meta("model", "TGAT");
        rep.set_meta("dataset", "Wiki");
        rep.set_meta_num("scale", scale as f64);
        rep
    });
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), lr);
    let mut best_val = 0.0f64;
    for e in 0..epochs {
        let s = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, e);
        best_val = best_val.max(s.val_ap);
        println!(
            "epoch {}: loss {:.4}  val AP {:.2}%  ({:.1}s)",
            e + 1,
            s.loss,
            s.val_ap * 100.0,
            s.train_time_s
        );
        if let Some(rep) = reporter.as_mut() {
            rep.record_epoch(e, &s);
            if show_prof {
                if let Some(er) = rep.epochs_so_far().last() {
                    for (phase, secs) in &er.phases_s {
                        println!("    {phase:<14} {secs:8.3}s");
                    }
                }
            }
        }
    }
    let (test_ap, test_s) = trainer.evaluate(&mut model, &ctx, split.test.clone());
    println!("best val AP: {:.2}%", best_val * 100.0);
    println!("test AP: {:.2}% (inference took {test_s:.2}s)", test_ap * 100.0);

    if let Some(rep) = reporter {
        let report = rep.finish(test_ap, test_s);
        if let Some(path) = &metrics_out {
            report.save(path).expect("write run report");
            println!("run report written to {}", path.display());
        }
        if profiling {
            tglite::obs::profile::enable(false);
            let roof = tgl_harness::profrep::Roofline::detect();
            let rows = tgl_harness::profrep::analyze(&report.profile, &roof);
            print!("{}", tgl_harness::profrep::render_table(&rows, &roof, 15));
            let coverage =
                tgl_harness::profrep::phase_coverage(&report.profile, &report.phases_total_s);
            print!("{}", tgl_harness::profrep::render_coverage(&coverage));
            if let Some(path) = &profile_out {
                std::fs::write(path, tglite::obs::profile::to_json(&report.profile))
                    .expect("write op profile");
                println!("op profile written to {}", path.display());
            }
        }
    }
    if trace_out.is_some() || critpath {
        let spans = tglite::obs::trace::take();
        tglite::obs::trace::enable(false);
        if let Some(path) = &trace_out {
            std::fs::write(path, tglite::obs::trace::to_chrome_json(&spans)).expect("write trace");
            println!(
                "chrome trace with {} spans written to {}",
                spans.len(),
                path.display()
            );
        }
        if critpath {
            let analysis = tglite::obs::critpath::analyze(&spans);
            print!("{}", tglite::obs::critpath::render_table(&analysis));
            if let Some(path) = &critpath_out {
                std::fs::write(path, tglite::obs::critpath::to_json(&analysis))
                    .expect("write critpath artifact");
                println!("critpath artifact written to {}", path.display());
            }
        }
    }
    if let Some(path) = arg_value("--flight-out") {
        std::fs::write(&path, tglite::obs::flight::to_json("request")).expect("write flight dump");
        println!("flight dump written to {path}");
    }
    if insight {
        print!("{}", tglite::obs::insight::render_table(8));
        if let Some(path) = &insight_out {
            std::fs::write(path, tglite::obs::insight::to_json()).expect("write insight artifact");
            println!("insight artifact written to {}", path.display());
        }
    }

    // The learning signal needs the full-size stream, all epochs, and
    // the default learning rate; a scaled-down quick run (or a
    // deliberately diverged one) only checks the plumbing.
    if scale <= 2 && epochs >= 3 && !host_resident && custom_lr.is_none() {
        assert!(test_ap > 0.5, "model should beat random");
    }

    if tglite::obs::alert::installed() {
        for st in tglite::obs::alert::status() {
            println!(
                "alert {}: fired {}x on {} ({})",
                st.rule.name,
                st.fired_total,
                st.rule.metric,
                if st.firing { "firing" } else { "ok" }
            );
        }
    }
    if serving.is_some() && arg_flag("--serve-hold") {
        println!("holding for scrape: GET /quit to release (10 min timeout)");
        tglite::obs::expo::wait_for_quit(std::time::Duration::from_secs(600));
    }
    tglite::obs::timeseries::stop_sampler();
    tgl_device::set_transfer_model(TransferModel::disabled());
}
