//! Quickstart: train TGAT on a Wiki-shaped CTDG for temporal link
//! prediction, then evaluate on the held-out chronological test split.
//!
//! ```sh
//! cargo run --release -p tgl-examples --bin quickstart
//! ```
//!
//! This walks through the full TGLite workflow from the paper:
//! build a `TGraph`, wrap a `TContext`, construct a model from the
//! framework's composable pieces, and drive epochs with the harness.

use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_harness::{TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tglite::TContext;

fn main() {
    // 1. A continuous-time dynamic graph. Here: a synthetic stream
    //    shaped like the paper's Wiki dataset (bipartite user–page
    //    edits with heavy repeat interactions). Swap in
    //    `tgl_data::load_csv` for your own `src,dst,time` data.
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(2);
    let (graph, stats) = generate(&spec);
    println!(
        "graph: {} nodes, {} edges, d_v={}, d_e={}, {:.0}% repeat interactions",
        stats.num_nodes,
        stats.num_edges,
        stats.d_node,
        stats.d_edge,
        stats.repeat_fraction * 100.0
    );

    // 2. The TGLite runtime context: target device, pinned pool,
    //    embedding/time caches.
    let ctx = TContext::new(graph.clone());

    // 3. A model composed from TGLite building blocks: 2 layers of
    //    temporal attention over 10 recent neighbors, with the paper's
    //    "TGLite+opt" operators (preload/dedup/cache/time-precompute).
    let mut model = Tgat::new(
        &ctx,
        ModelConfig {
            emb_dim: 32,
            time_dim: 16,
            heads: 2,
            n_layers: 2,
            n_neighbors: 10,
            mailbox_slots: 1,
        },
        OptFlags::all(),
        42,
    );
    println!(
        "model: {} with {} parameters",
        model.name(),
        model
            .parameters()
            .iter()
            .map(tglite::tensor::Tensor::numel)
            .sum::<usize>()
    );

    // 4. Chronological 70/15/15 split and the training loop.
    let split = Split::standard(&graph);
    let trainer = Trainer::new(
        TrainConfig {
            batch_size: 200,
            epochs: 3,
            lr: 1e-3,
            seed: 0,
        },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    );
    let (epochs, best_val, test_ap, test_s) = trainer.run(&mut model, &ctx, &split);
    for (i, e) in epochs.iter().enumerate() {
        println!(
            "epoch {}: loss {:.4}  val AP {:.2}%  ({:.1}s)",
            i + 1,
            e.loss,
            e.val_ap * 100.0,
            e.train_time_s
        );
    }
    println!("best val AP: {:.2}%", best_val * 100.0);
    println!("test AP: {:.2}% (inference took {test_s:.2}s)", test_ap * 100.0);
    assert!(test_ap > 0.5, "model should beat random");
}
