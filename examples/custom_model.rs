//! Composing a *new* TGNN from TGLite's building blocks — the
//! exploration workflow the paper's abstractions exist for ("users can
//! define new block operators for their needs or explore applying the
//! operators in new ways").
//!
//! ```sh
//! cargo run --release -p tgl-examples --bin custom_model
//! ```
//!
//! The custom model here is *not* one of the paper's four: a
//! mean-pooling temporal GNN with max-pooled second hop and a gated
//! skip connection, assembled purely from `tglite::op` primitives —
//! no framework changes needed. A custom post-processing hook (output
//! L2-normalization) shows the user-facing side of the hooks
//! mechanism.

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::SeedableRng;
use tgl_data::{generate, DatasetKind, DatasetSpec, NegativeSampler, Split};
use tgl_harness::metrics::average_precision;
use tgl_models::EdgePredictor;
use tgl_sampler::SamplingStrategy;
use tgl_tensor::nn::{Linear, Module};
use tgl_tensor::ops::cat;
use tgl_tensor::optim::Adam;
use tgl_tensor::{bce_with_logits, Tensor};
use tglite::nn::TimeEncode;
use tglite::{op, BlockHook, TBatch, TBlock, TContext, TSampler};

/// A hand-rolled temporal GNN layer: mean-pool neighbor features and
/// their time encodings, max-pool as a second signal, then gate with
/// the destination's own features.
struct PoolLayer {
    w_nbr: Linear,
    w_self: Linear,
    gate: Linear,
    te: TimeEncode,
}

impl PoolLayer {
    fn new(dim_in: usize, dim_edge: usize, dim_time: usize, dim_out: usize, rng: &mut StdRng) -> Self {
        PoolLayer {
            w_nbr: Linear::new(2 * (dim_in + dim_edge + dim_time), dim_out, rng),
            w_self: Linear::new(dim_in, dim_out, rng),
            gate: Linear::new(dim_in, dim_out, rng),
            te: TimeEncode::new(dim_time, rng),
        }
    }

    fn forward(&self, blk: &TBlock) -> Tensor {
        let h_dst = blk.dstdata("h");
        let own = self.w_self.forward(&h_dst);
        if blk.num_edges() == 0 {
            return own.tanh();
        }
        // Per-edge message: [neighbor h ‖ edge feat ‖ Φ(Δt)].
        let msg = cat(
            &[blk.srcdata("h"), blk.efeat(), self.te.forward(&blk.delta_times())],
            1,
        );
        // Two pooled views via the segmented operators.
        let mean = op::edge_reduce(blk, &msg, op::ReduceOp::Mean);
        let max = op::edge_reduce(blk, &msg, op::ReduceOp::Max);
        let pooled = self.w_nbr.forward(&cat(&[mean, max], 1));
        // Gated skip connection.
        let g = self.gate.forward(&h_dst).sigmoid();
        own.mul(&g).add(&pooled.mul(&g.neg().add_scalar(1.0))).tanh()
    }

    fn params(&self) -> Vec<Tensor> {
        let mut p = self.w_nbr.parameters();
        p.extend(self.w_self.parameters());
        p.extend(self.gate.parameters());
        p.extend(self.te.parameters());
        p
    }
}

fn embeddings(
    ctx: &TContext,
    batch: &TBatch,
    sampler: &TSampler,
    layers: &[PoolLayer],
) -> Tensor {
    let head = batch.block(ctx);
    let mut tail = head.clone();
    for i in 0..layers.len() {
        if i > 0 {
            tail = tail.next_block();
        }
        op::dedup(&tail); // built-in optimization, composed freely
        sampler.sample(&tail);
    }
    // A user-registered hook: L2-normalize the head block's output
    // (runs automatically inside aggregate, after dedup's inversion
    // hooks of deeper blocks).
    head.register_hook(BlockHook::new("l2-normalize", |t: Tensor| {
        let norms = t.mul(&t).sum_dim(1).add_scalar(1e-6).sqrt();
        let n = t.dim(0);
        t.div(&norms.reshape([n, 1]))
    }));
    tail.set_dstdata("h", tail.dstfeat());
    tail.set_srcdata("h", tail.srcfeat());
    op::aggregate(&head, "h", |blk| layers[blk.layer()].forward(blk))
}

fn main() {
    let spec = DatasetSpec::of(DatasetKind::Mooc).scaled_down(4);
    let (graph, stats) = generate(&spec);
    println!("dataset: MOOC-shape, {} edges", stats.num_edges);

    let ctx = TContext::new(graph.clone());
    let mut rng = StdRng::seed_from_u64(21);
    let (d_node, d_edge, d_time, emb) = (graph.node_feat_dim(), graph.edge_feat_dim(), 8, 24);
    let layers = vec![
        PoolLayer::new(emb, d_edge, d_time, emb, &mut rng),
        PoolLayer::new(d_node, d_edge, d_time, emb, &mut rng),
    ];
    // Dimension note: layer index == block layer; the deepest block
    // (layer 1) consumes raw features.
    let predictor = EdgePredictor::new(emb, &mut rng);
    let sampler = TSampler::from_engine(
        tgl_sampler::TemporalSampler::new(8, SamplingStrategy::Recent).with_seed(0),
    );

    let mut params: Vec<Tensor> = layers.iter().flat_map(PoolLayer::params).collect();
    params.extend(predictor.parameters());
    println!(
        "custom model: {} parameters across {} tensors",
        params.iter().map(Tensor::numel).sum::<usize>(),
        params.len()
    );
    let mut opt = Adam::new(params, 2e-3);

    let split = Split::standard(&graph);
    let mut negs = NegativeSampler::for_spec(&spec, 4);
    for epoch in 0..3 {
        let mut total = 0.0;
        let mut batches = 0;
        for r in Split::batches(&split.train, 200) {
            let mut batch = TBatch::new(graph.clone(), r);
            batch.set_negatives(negs.draw(batch.len()));
            let n = batch.len();
            opt.zero_grad();
            let embs = embeddings(&ctx, &batch, &sampler, &layers);
            let pos = predictor.forward(&embs.narrow_rows(0, n), &embs.narrow_rows(n, n));
            let neg = predictor.forward(&embs.narrow_rows(0, n), &embs.narrow_rows(2 * n, n));
            let logits = cat(&[pos, neg], 0);
            let mut targets = vec![1.0f32; n];
            targets.extend(vec![0.0; n]);
            let loss = bce_with_logits(&logits, &Tensor::from_vec(targets, [2 * n]));
            total += loss.item();
            batches += 1;
            loss.backward();
            opt.step();
        }
        println!("epoch {}: loss {:.4}", epoch + 1, total / batches as f32);
    }

    // Evaluate.
    let _guard = tglite::tensor::no_grad();
    let (mut all_pos, mut all_neg) = (Vec::new(), Vec::new());
    for r in Split::batches(&split.test, 200) {
        let mut batch = TBatch::new(graph.clone(), r);
        batch.set_negatives(negs.draw(batch.len()));
        let n = batch.len();
        let embs = embeddings(&ctx, &batch, &sampler, &layers);
        all_pos.extend(
            predictor
                .forward(&embs.narrow_rows(0, n), &embs.narrow_rows(n, n))
                .to_vec(),
        );
        all_neg.extend(
            predictor
                .forward(&embs.narrow_rows(0, n), &embs.narrow_rows(2 * n, n))
                .to_vec(),
        );
    }
    let ap = average_precision(&all_pos, &all_neg);
    println!("custom model test AP: {:.2}%", ap * 100.0);
    assert!(ap > 0.5, "custom model should beat random");
}
