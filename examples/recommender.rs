//! Time-aware recommendation — the paper's other motivating CTDG
//! application ("time-aware recommendation systems").
//!
//! ```sh
//! cargo run --release -p tgl-examples --bin recommender
//! ```
//!
//! JODIE (the model built for exactly this: user–item interaction
//! trajectories) trains on a LastFM-shaped listening stream, then
//! produces top-k item recommendations for users by scoring all items
//! with the user's time-projected memory embedding.

use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_harness::{TrainConfig, Trainer};
use tgl_models::{Jodie, ModelConfig, OptFlags, TemporalModel};
use tglite::tensor::no_grad;
use tglite::{TBatch, TContext};

fn main() {
    let spec = DatasetSpec::of(DatasetKind::Lastfm).scaled_down(3);
    let (graph, stats) = generate(&spec);
    let n_users = spec.n_src;
    let n_items = spec.n_items;
    println!(
        "listening stream: {} users x {} tracks, {} plays",
        n_users, n_items, stats.num_edges
    );

    let ctx = TContext::new(graph.clone());
    let mut model = Jodie::new(
        &ctx,
        ModelConfig {
            emb_dim: 32,
            time_dim: 16,
            heads: 1,
            n_layers: 1,
            n_neighbors: 1,
            mailbox_slots: 1,
        },
        OptFlags::preload_only(),
        11,
    );

    let split = Split::standard(&graph);
    let trainer = Trainer::new(
        TrainConfig {
            batch_size: 200,
            epochs: 3,
            lr: 2e-3,
            seed: 2,
        },
        n_users as u32,
        spec.num_nodes() as u32,
    );
    let (_, best_val, test_ap, _) = trainer.run(&mut model, &ctx, &split);
    println!("val AP {:.2}%, test AP {:.2}%", best_val * 100.0, test_ap * 100.0);

    // Top-k recommendation: for a few active users, score every item
    // at "now" (just past the final event) and rank, using the
    // stateless scoring API so the model's memory is not perturbed.
    println!("\n--- top-3 recommendations at t = now ---");
    let now = graph.max_time() + 1.0;
    model.set_training(false);
    let _guard = no_grad();
    let items: Vec<u32> = (0..n_items as u32).map(|i| n_users as u32 + i).collect();
    for user in 0..3u32 {
        let users = vec![user; items.len()];
        let times = vec![now; items.len()];
        let scores = model.score_pairs(&ctx, &users, &items, &times);
        let mut ranked: Vec<(u32, f32)> = (0..items.len() as u32).zip(scores).collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = ranked
            .iter()
            .take(3)
            .map(|(i, s)| format!("track#{i} ({s:.2})"))
            .collect();
        println!("user#{user} @ t={now:.0}: {}", top.join(", "));
    }
    let _ = TBatch::new(graph.clone(), 0..0); // (API surface sanity)
    assert!(test_ap > 0.5, "recommender should beat random");
}
