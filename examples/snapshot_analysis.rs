//! Discrete-time analysis of a continuous stream — exercising the
//! snapshot abstraction the paper's future-work section proposes
//! ("perhaps as composable operators on a graph snapshot abstraction",
//! §7).
//!
//! ```sh
//! cargo run --release -p tgl-examples --bin snapshot_analysis
//! ```
//!
//! Partitions a WikiTalk-shaped communication stream into discrete
//! windows (DTDG view), tracks activity and hub churn across windows,
//! and contrasts the *cumulative* growing-graph view with the
//! *windowed* delta view.

use tgl_data::{generate, stats::temporal_stats, DatasetKind, DatasetSpec};
use tgl_graph::snapshots::{SnapshotMode, SnapshotView};
use tgl_harness::table::TextTable;

fn main() {
    let spec = DatasetSpec::of(DatasetKind::WikiTalk).scaled_down(4);
    let (graph, _) = generate(&spec);
    let stats = temporal_stats(&graph);
    println!(
        "stream: {} nodes, {} messages over {:.1e} time units",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_time()
    );
    println!(
        "redundancy {:.0}% | degree gini {:.2} | max degree {}",
        stats.repeat_edge_fraction * 100.0,
        stats.degree_gini,
        stats.max_degree
    );

    // Windowed (delta) view: per-window activity and top hub.
    let windows = 8;
    let view = SnapshotView::new(&graph, windows, SnapshotMode::Windowed);
    println!("\n--- {windows} discrete windows (DTDG deltas) ---");
    let mut t = TextTable::new(&["window", "time range", "edges", "top hub", "hub degree"]);
    let mut prev_hub: Option<u32> = None;
    let mut hub_changes = 0;
    for (k, snap) in view.iter().enumerate() {
        let deg = snap.degrees();
        let (hub, hub_deg) = deg
            .iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .map(|(i, d)| (i as u32, *d))
            .unwrap_or((0, 0));
        if let Some(p) = prev_hub {
            if p != hub && hub_deg > 0 {
                hub_changes += 1;
            }
        }
        prev_hub = Some(hub);
        t.row(&[
            k.to_string(),
            format!("{:.1e}..{:.1e}", snap.window.0, snap.window.1),
            snap.num_edges().to_string(),
            format!("node#{hub}"),
            hub_deg.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("hub changed between {hub_changes}/{} window transitions", windows - 1);

    // Cumulative view: growth curve.
    println!("\n--- cumulative (growing graph) view ---");
    let cumulative = SnapshotView::new(&graph, windows, SnapshotMode::Cumulative);
    for (k, snap) in cumulative.iter().enumerate() {
        let frac = snap.num_edges() as f64 / graph.num_edges() as f64;
        println!(
            "after window {k}: {:>6} edges ({:>5.1}%) {}",
            snap.num_edges(),
            frac * 100.0,
            "#".repeat((frac * 40.0) as usize)
        );
    }

    // Invariant demonstrated: windows partition the stream exactly.
    let total: usize = view.iter().map(|s| s.num_edges()).sum();
    assert_eq!(total, graph.num_edges());
    println!("\nwindows partition the stream exactly ({total} edges) ✓");
}
