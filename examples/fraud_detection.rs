//! Fraud detection on a transaction stream — the real-time use case
//! the paper's introduction motivates for CTDGs ("real-time fraud
//! detection").
//!
//! ```sh
//! cargo run --release -p tgl-examples --bin fraud_detection
//! ```
//!
//! A TGN model (GRU node memory + temporal attention) trains on a
//! Reddit-shaped interaction stream, then scores a live tail of the
//! stream one event at a time: low-probability events are flagged as
//! anomalous. This exercises the memory/mailbox machinery — the
//! model's node state keeps advancing as events arrive.

use tgl_runtime::rng::StdRng;
use tgl_runtime::rng::{Rng, SeedableRng};
use tgl_data::{generate, DatasetKind, DatasetSpec, NegativeSampler, Split};
use tgl_harness::{TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgn};
use tglite::tensor::no_grad;
use tglite::{TBatch, TContext};

fn main() {
    let spec = DatasetSpec::of(DatasetKind::Reddit).scaled_down(4);
    let (graph, stats) = generate(&spec);
    println!(
        "transaction stream: {} accounts, {} transactions",
        stats.num_nodes, stats.num_edges
    );

    let ctx = TContext::new(graph.clone());
    let mut model = Tgn::new(
        &ctx,
        ModelConfig {
            emb_dim: 32,
            time_dim: 16,
            heads: 2,
            n_layers: 2,
            n_neighbors: 10,
            mailbox_slots: 1,
        },
        OptFlags::preload_only(),
        7,
    );

    // Train on the first 70% of the stream.
    let split = Split::standard(&graph);
    let trainer = Trainer::new(
        TrainConfig {
            batch_size: 200,
            epochs: 2,
            lr: 1e-3,
            seed: 1,
        },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    );
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
    for e in 0..2 {
        let s = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, e);
        println!("epoch {}: loss {:.4}, val AP {:.2}%", e + 1, s.loss, s.val_ap * 100.0);
    }

    // Live scoring: walk the test tail in micro-batches; each event is
    // scored against its probability under the model. Events the model
    // finds very unlikely are flagged. We also inject synthetic fraud:
    // random account pairs that never interacted.
    println!("\n--- live monitoring ({} events) ---", split.test.len());
    model.set_training(false);
    let mut rng = StdRng::seed_from_u64(9);
    let mut negs = NegativeSampler::for_spec(&spec, 5);
    let mut genuine_scores = Vec::new();
    let mut fraud_scores = Vec::new();
    {
        let _guard = no_grad();
        for r in Split::batches(&split.test, 50) {
            let mut batch = TBatch::new(graph.clone(), r);
            batch.set_negatives(negs.draw(batch.len()));
            // The "negatives" here play the role of injected fraudulent
            // counterparties at the same timestamps.
            let (pos, neg) = model.forward(&ctx, &batch);
            genuine_scores.extend(pos.to_vec());
            fraud_scores.extend(neg.to_vec());
        }
    }
    let threshold = percentile(&genuine_scores, 0.05);
    let caught = fraud_scores.iter().filter(|&&s| s < threshold).count();
    let false_alarms = genuine_scores.iter().filter(|&&s| s < threshold).count();
    println!(
        "alert threshold (5% FPR on genuine traffic): score < {threshold:.2}"
    );
    println!(
        "flagged {}/{} injected fraudulent events ({:.0}% recall)",
        caught,
        fraud_scores.len(),
        100.0 * caught as f64 / fraud_scores.len() as f64
    );
    println!(
        "false alarms: {}/{} genuine events",
        false_alarms,
        genuine_scores.len()
    );
    let ap = tgl_harness::metrics::average_precision(&genuine_scores, &fraud_scores);
    println!("separation AP: {:.2}%", ap * 100.0);
    let _ = rng.gen::<u8>();
    assert!(ap > 0.5, "detector should beat random");
}

fn percentile(xs: &[f32], p: f64) -> f32 {
    let mut v = xs.to_vec();
    v.sort_by(f32::total_cmp);
    v[((v.len() as f64 - 1.0) * p) as usize]
}
