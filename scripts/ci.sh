#!/usr/bin/env bash
# Tier-1 CI for the TGLite reproduction. The workspace is
# dependency-free (std only), so everything runs with --offline and no
# lockfile network round-trips.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace --benches

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint"
fi

echo "==> CI green"
