#!/usr/bin/env bash
# Tier-1 CI for the TGLite reproduction. The workspace is
# dependency-free (std only), so everything runs with --offline and no
# lockfile network round-trips.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace --benches

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> quickstart with tracing + metrics"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
TGL_THREADS=2 cargo run --release --offline -q -p tgl-examples --bin quickstart -- \
    --scale 8 --epochs 1 \
    --prof --trace-out "$OBS_DIR/trace.json" --metrics-out "$OBS_DIR/report.json"
./target/release/tgl jsoncheck "$OBS_DIR/trace.json"
./target/release/tgl jsoncheck "$OBS_DIR/report.json"
# The training epoch must actually recycle tensor buffers: a zero (or
# missing) pool hit count means the hot path regressed to fresh allocs.
grep -Eq '"tensor\.pool\.hit": *[1-9]' "$OBS_DIR/report.json" \
    || { echo "run report shows no tensor pool hits"; exit 1; }

echo "==> allocation churn smoke (pool on vs off, bitwise loss guard)"
cargo bench --offline -q -p tgl-bench --bench alloc_churn
./target/release/tgl jsoncheck BENCH_alloc.json

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint"
fi

echo "==> CI green"
