#!/usr/bin/env bash
# Tier-1 CI for the TGLite reproduction. The workspace is
# dependency-free (std only), so everything runs with --offline and no
# lockfile network round-trips.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace --benches

echo "==> cargo test -q --offline (TGL_KERNEL=exact, the default)"
TGL_KERNEL=exact cargo test -q --offline --workspace

echo "==> cargo test -q --offline (TGL_KERNEL=fast)"
TGL_KERNEL=fast cargo test -q --offline --workspace

echo "==> quickstart with tracing + metrics"
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
TGL_THREADS=2 cargo run --release --offline -q -p tgl-examples --bin quickstart -- \
    --scale 8 --epochs 1 \
    --prof --trace-out "$OBS_DIR/trace.json" --metrics-out "$OBS_DIR/report.json"
./target/release/tgl jsoncheck "$OBS_DIR/trace.json"
./target/release/tgl jsoncheck "$OBS_DIR/report.json"
# The training epoch must actually recycle tensor buffers: a zero (or
# missing) pool hit count means the hot path regressed to fresh allocs.
grep -Eq '"tensor\.pool\.hit": *[1-9]' "$OBS_DIR/report.json" \
    || { echo "run report shows no tensor pool hits"; exit 1; }

echo "==> quickstart with op-level profiling (roofline table + artifact)"
PROF_LOG="$OBS_DIR/profile.log"
TGL_THREADS=2 ./target/release/quickstart \
    --scale 8 --epochs 1 \
    --profile --profile-out "$OBS_DIR/profile.json" >"$PROF_LOG" 2>&1 \
    || { cat "$PROF_LOG"; exit 1; }
./target/release/tgl jsoncheck "$OBS_DIR/profile.json"
grep -q '"schema": "tgl-profile/v1"' "$OBS_DIR/profile.json" \
    || { echo "profile artifact missing tgl-profile/v1 schema"; exit 1; }
# The top-k table must attribute real GEMM work with a roofline verdict.
grep -q "matmul" "$PROF_LOG" \
    || { echo "profile table names no GEMM op"; cat "$PROF_LOG"; exit 1; }
grep -Eq "compute-bound|bandwidth-bound" "$PROF_LOG" \
    || { echo "profile table carries no roofline verdict"; cat "$PROF_LOG"; exit 1; }
grep -q "phase coverage" "$PROF_LOG" \
    || { echo "profile output missing phase coverage lines"; cat "$PROF_LOG"; exit 1; }
# The roofline header must name the calibrated peak with its kernel
# mode, and no op may be reported above that peak — a ">peak!" marker
# means the ceiling is stale relative to the measured rates.
grep -q "roofline: peak" "$PROF_LOG" \
    || { echo "profile output missing roofline header"; cat "$PROF_LOG"; exit 1; }
grep -q "kernel exact" "$PROF_LOG" \
    || { echo "roofline header does not name the default kernel mode"; cat "$PROF_LOG"; exit 1; }
if grep -q ">peak!" "$PROF_LOG"; then
    echo "profile reports an op above the calibrated GEMM peak"; cat "$PROF_LOG"; exit 1
fi

echo "==> critical-path analysis + flight recorder smoke"
CP_LOG="$OBS_DIR/critpath.log"
TGL_THREADS=2 ./target/release/quickstart \
    --scale 8 --epochs 1 \
    --critpath --critpath-out "$OBS_DIR/critpath.json" \
    --flight-out "$OBS_DIR/flight.json" >"$CP_LOG" 2>&1 \
    || { cat "$CP_LOG"; exit 1; }
./target/release/tgl jsoncheck "$OBS_DIR/critpath.json"
./target/release/tgl jsoncheck "$OBS_DIR/flight.json"
grep -q '"schema": "tgl-critpath/v1"' "$OBS_DIR/critpath.json" \
    || { echo "critpath artifact missing tgl-critpath/v1 schema"; exit 1; }
grep -q '"schema": "tgl-flight/v1"' "$OBS_DIR/flight.json" \
    || { echo "flight dump missing tgl-flight/v1 schema"; exit 1; }
# The table must lead with the critical-path headline and break the
# run down into the pipeline stages the paper's Figure 7 names.
grep -q "critical path" "$CP_LOG" \
    || { echo "critpath table missing headline"; cat "$CP_LOG"; exit 1; }
for stage in sample transfer forward backward; do
    grep -Eq "^$stage +[0-9]" "$CP_LOG" \
        || { echo "critpath table missing $stage stage"; cat "$CP_LOG"; exit 1; }
done
grep -q "overlap efficiency" "$CP_LOG" \
    || { echo "critpath table missing overlap efficiency"; cat "$CP_LOG"; exit 1; }

echo "==> pipelined trainer smoke (--pipeline 2, overlap via critpath)"
PIPE_LOG="$OBS_DIR/pipeline.log"
TGL_THREADS=2 ./target/release/quickstart \
    --scale 8 --epochs 1 --pipeline 2 --critpath >"$PIPE_LOG" 2>&1 \
    || { cat "$PIPE_LOG"; exit 1; }
grep -q "pipeline: sampler stage prefetching up to 2 batches" "$PIPE_LOG" \
    || { echo "quickstart did not enable the pipeline"; cat "$PIPE_LOG"; exit 1; }
# The sampler stage must actually run concurrently with compute: the
# critpath table's sample/transfer rows need nonzero overlap columns.
awk '$1=="sample" {s=$4+0} $1=="transfer" {t=$4+0} END {exit !(s>0 || t>0)}' "$PIPE_LOG" \
    || { echo "pipelined run shows no overlapped sample/transfer time"; cat "$PIPE_LOG"; exit 1; }

echo "==> live /metrics exposition + scrape check (with SLO rules + dashboard)"
QS_LOG="$OBS_DIR/serve.log"
TGL_THREADS=2 ./target/release/quickstart \
    --scale 16 --epochs 1 --move --pipeline 2 \
    --slo examples/slo.rules --insight \
    --serve-metrics 127.0.0.1:0 --serve-hold >"$QS_LOG" 2>&1 &
QS_PID=$!
# The dashboard must serve while training is still running, so grab
# the bound address as soon as it is printed and scrape immediately.
ADDR=""
for _ in $(seq 1 600); do
    ADDR="$(sed -n 's#^metrics server listening on http://\([^/]*\)/metrics$#\1#p' "$QS_LOG" 2>/dev/null | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$QS_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "quickstart never bound its metrics server"; cat "$QS_LOG"
    kill "$QS_PID" 2>/dev/null || true
    exit 1
fi
./target/release/tgl get "$ADDR" /dashboard >"$OBS_DIR/dashboard.html" \
    || { echo "dashboard scrape during training failed"; cat "$QS_LOG"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
grep -q "<!DOCTYPE html>" "$OBS_DIR/dashboard.html" \
    || { echo "dashboard is not an HTML document"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
grep -q "</html>" "$OBS_DIR/dashboard.html" \
    || { echo "dashboard HTML is truncated"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
# Self-contained: no external scripts, stylesheets, or images.
if grep -Eq "https://|<link|src=|@import" "$OBS_DIR/dashboard.html"; then
    echo "dashboard references external assets"; kill "$QS_PID" 2>/dev/null || true; exit 1
fi
# Scrape the exposition only once training is done and the server is
# in its hold phase, so every latency family has samples.
for _ in $(seq 1 600); do
    grep -q "holding for scrape" "$QS_LOG" 2>/dev/null && break
    kill -0 "$QS_PID" 2>/dev/null || break
    sleep 0.5
done
if ! grep -q "holding for scrape" "$QS_LOG"; then
    echo "quickstart never reached its metrics hold phase"; cat "$QS_LOG"
    kill "$QS_PID" 2>/dev/null || true
    exit 1
fi
# The retained time-series and alert state must export as valid,
# schema-conforming artifacts (jsoncheck shape-validates both).
./target/release/tgl get "$ADDR" /timeseries.json >"$OBS_DIR/timeseries.json" \
    || { cat "$QS_LOG"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
./target/release/tgl get "$ADDR" /alerts.json >"$OBS_DIR/alerts.json" \
    || { cat "$QS_LOG"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
./target/release/tgl jsoncheck "$OBS_DIR/timeseries.json"
./target/release/tgl jsoncheck "$OBS_DIR/alerts.json"
grep -q '"schema": "tgl-timeseries/v1"' "$OBS_DIR/timeseries.json" \
    || { echo "timeseries export missing its schema tag"; exit 1; }
grep -q '"name": "train.loss"' "$OBS_DIR/timeseries.json" \
    || { echo "timeseries export retained no train.loss series"; exit 1; }
grep -q '"schema": "tgl-alerts/v1"' "$OBS_DIR/alerts.json" \
    || { echo "alerts export missing its schema tag"; exit 1; }
grep -q '"installed": true' "$OBS_DIR/alerts.json" \
    || { echo "alerts export shows no installed rules"; exit 1; }
# The live /insight.json endpoint must serve the introspection summary
# with its schema tag while the run holds.
./target/release/tgl get "$ADDR" /insight.json >"$OBS_DIR/insight-live.json" \
    || { cat "$QS_LOG"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
./target/release/tgl jsoncheck "$OBS_DIR/insight-live.json"
grep -q '"schema": "tgl-insight/v1"' "$OBS_DIR/insight-live.json" \
    || { echo "/insight.json missing its schema tag"; exit 1; }
grep -q '"name": "insight.layer.' "$OBS_DIR/insight-live.json" \
    || { echo "/insight.json carries no per-layer series"; exit 1; }
# The pipelined run must expose its depth gauge, queue telemetry, the
# alert engine's metric families, and the introspection gauges.
./target/release/tgl promcheck "$ADDR" --min-hist 5 \
    --require tgl_pipeline_depth,tgl_pipeline_queue_occupancy,tgl_pipeline_queue_send_wait_ns,tgl_pipeline_queue_recv_wait_ns,tgl_alerts_evaluations_total,tgl_alerts_fired_total,tgl_alerts_firing,tgl_insight_steps_total,tgl_insight_grad_norm_max,tgl_insight_update_ratio_max,tgl_insight_neg_collision_rate,tgl_insight_dead_frac_max \
    --quit \
    || { cat "$QS_LOG"; kill "$QS_PID" 2>/dev/null || true; exit 1; }
wait "$QS_PID"

echo "==> SLO alert rules: injected regressions fire deterministically"
SLO_LOG="$OBS_DIR/slo.log"
# NaN injection under the warn policy: the run completes, and both the
# loss-trend and non-finite canary rules report firings in the summary.
TGL_THREADS=2 ./target/release/quickstart \
    --scale 4 --epochs 1 --lr 1e18 --health warn --slo examples/slo.rules >"$SLO_LOG" 2>&1 \
    || { cat "$SLO_LOG"; exit 1; }
grep -Eq "alert loss-divergence: fired [1-9][0-9]*x on train.loss \(firing\)" "$SLO_LOG" \
    || { echo "injected-NaN run did not fire the loss-trend alert"; cat "$SLO_LOG"; exit 1; }
grep -Eq "alert loss-nonfinite: fired [1-9][0-9]*x on train.loss" "$SLO_LOG" \
    || { echo "injected-NaN run did not fire the non-finite canary"; cat "$SLO_LOG"; exit 1; }
# Finite divergence under the fail policy: the fail-severity trend rule
# aborts the run through the health monitor and a flight dump lands
# carrying the alert reason and the series trajectory.
FAIL_LOG="$OBS_DIR/slo-fail.log"
ALERT_FLIGHT_DIR="$OBS_DIR/alert-flight"
mkdir -p "$ALERT_FLIGHT_DIR"
if TGL_FLIGHT_DIR="$ALERT_FLIGHT_DIR" TGL_THREADS=2 ./target/release/quickstart \
    --scale 4 --epochs 1 --lr 100 --health fail --slo examples/slo.rules >"$FAIL_LOG" 2>&1; then
    echo "fail-policy diverged run should have aborted"; cat "$FAIL_LOG"; exit 1
fi
grep -q "alert loss-divergence fired" "$FAIL_LOG" \
    || { echo "abort did not come from the loss-trend alert"; cat "$FAIL_LOG"; exit 1; }
ALERT_DUMP="$(ls "$ALERT_FLIGHT_DIR"/*.json 2>/dev/null | head -1)"
[ -n "$ALERT_DUMP" ] || { echo "alert abort left no flight dump"; cat "$FAIL_LOG"; exit 1; }
./target/release/tgl jsoncheck "$ALERT_DUMP"
grep -q '"reason": "alert-fail"' "$ALERT_DUMP" \
    || { echo "flight dump reason is not alert-fail"; exit 1; }
grep -q '"timeseries"' "$ALERT_DUMP" \
    || { echo "flight dump carries no time-series trajectory"; exit 1; }

echo "==> model & data introspection (--insight table + tgl-insight/v1 artifact)"
INS_LOG="$OBS_DIR/insight.log"
TGL_THREADS=2 ./target/release/quickstart \
    --scale 8 --epochs 1 --insight --insight-out "$OBS_DIR/insight.json" >"$INS_LOG" 2>&1 \
    || { cat "$INS_LOG"; exit 1; }
./target/release/tgl jsoncheck "$OBS_DIR/insight.json"
grep -q '"schema": "tgl-insight/v1"' "$OBS_DIR/insight.json" \
    || { echo "insight artifact missing tgl-insight/v1 schema"; exit 1; }
# The artifact must carry per-parameter-group and data-quality series.
grep -q '"name": "insight.layer.layer0.w_q.grad_norm"' "$OBS_DIR/insight.json" \
    || { echo "insight artifact missing layer0.w_q grad norm"; exit 1; }
grep -q '"name": "insight.data.nbr_dt.mean"' "$OBS_DIR/insight.json" \
    || { echo "insight artifact missing neighbor time-delta series"; exit 1; }
# The console table must name per-layer parameter groups.
grep -q "model introspection" "$INS_LOG" \
    || { echo "--insight printed no model table"; cat "$INS_LOG"; exit 1; }
grep -Eq "^  layer[0-9]+\.[a-z_]+ " "$INS_LOG" \
    || { echo "--insight table carries no per-layer row"; cat "$INS_LOG"; exit 1; }
grep -q "data introspection" "$INS_LOG" \
    || { echo "--insight printed no data-quality table"; cat "$INS_LOG"; exit 1; }

echo "==> allocation churn smoke (pool on vs off, bitwise loss guard)"
cargo bench --offline -q -p tgl-bench --bench alloc_churn
./target/release/tgl jsoncheck BENCH_alloc.json

echo "==> observability overhead guard (counters, histograms, gauges, profiler, time-series, alert sites)"
cargo bench --offline -q -p tgl-bench --bench obs_overhead
./target/release/tgl jsoncheck BENCH_obs.json

echo "==> pipelined-vs-sequential epoch walls (bitwise loss guard)"
cargo bench --offline -q -p tgl-bench --bench pipeline
./target/release/tgl jsoncheck BENCH_pipeline.json
grep -q '"bitwise_identical": true' BENCH_pipeline.json \
    || { echo "BENCH_pipeline.json missing bitwise-identity marker"; exit 1; }

echo "==> micro-op + GEMM series (exact/fast kernel modes, thread scaling)"
cargo bench --offline -q -p tgl-bench --bench micro_ops
./target/release/tgl jsoncheck BENCH_micro_gemm.json
./target/release/tgl jsoncheck BENCH_parallel.json
# Both kernel modes must appear in the regenerated artifact so the
# roofline can calibrate whichever mode a run selects.
for mode in exact fast; do
    grep -q "\"kernel\": \"$mode\"" BENCH_micro_gemm.json \
        || { echo "BENCH_micro_gemm.json missing $mode-mode series"; exit 1; }
done

echo "==> bench trajectory vs committed baselines"
scripts/bench_trend

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline -D warnings"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy unavailable; skipping lint"
fi

echo "==> CI green"
