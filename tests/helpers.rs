//! Shared fixtures for the cross-crate integration tests.

use std::sync::Arc;

use tgl_data::{generate, DatasetKind, DatasetSpec, NegativeSampler};
use tglite::{TBatch, TContext, TGraph};

/// A small Wiki-shaped dataset for fast end-to-end tests.
pub fn tiny_wiki() -> (Arc<TGraph>, DatasetSpec) {
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
    let (g, _) = generate(&spec);
    (g, spec)
}

/// A host-device context over a graph.
pub fn ctx(g: &Arc<TGraph>) -> TContext {
    TContext::new(Arc::clone(g))
}

/// A batch over `range` with seeded negatives drawn from the spec's
/// destination universe.
pub fn batch(g: &Arc<TGraph>, spec: &DatasetSpec, range: std::ops::Range<usize>, seed: u64) -> TBatch {
    let mut b = TBatch::new(Arc::clone(g), range);
    let mut negs = NegativeSampler::for_spec(spec, seed);
    let n = b.len();
    b.set_negatives(negs.draw(n));
    b
}

/// Asserts two logit vectors agree within `tol`.
pub fn assert_logits_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "{what}: logit {i} differs: {x} vs {y}"
        );
    }
}
