//! Acceptance suite for the unified observability layer (`tgl-obs`):
//! a real TGAT training run must (a) record trace spans from at least
//! two distinct threads, exported as Chrome-trace JSON that the
//! in-tree parser accepts, (b) produce a structured run report whose
//! per-epoch phase breakdown names the paper's Figure-7 operations,
//! and (c) leave the subsystem counters (cache hits, transfer bytes)
//! visibly advanced.
//!
//! Everything observability touches is process-global (trace sink,
//! phase map, counter registry, thread pool), so every test holds the
//! `serial()` lock and restores the default state on the way out.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{DatasetKind, Json};
use tgl_harness::{
    run_experiment, ExperimentConfig, Framework, ModelKind, Placement, RunReporter,
};
use tgl_models::ModelConfig;
use tgl_runtime::set_threads;
use tglite::obs::{metrics, trace};

/// Serializes tests: trace sink, phase map, and pool size are global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cheap TGAT epoch with the paper-default layer sizes (batches
/// large enough that the tensor kernels dispatch to pool workers).
fn obs_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        Framework::TgLiteOpt,
        ModelKind::Tgat,
        DatasetKind::Wiki,
        Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(10);
    cfg.train_cfg.epochs = 1;
    cfg
}

#[test]
fn traced_run_spans_two_threads_and_exports_valid_chrome_json() {
    let _g = serial();
    set_threads(2);
    trace::enable(true);
    trace::take(); // discard anything a prior test left behind
    run_experiment(&obs_cfg());
    let spans = trace::take();
    trace::enable(false);
    set_threads(1);

    assert!(!spans.is_empty(), "traced run recorded no spans");
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= 2,
        "expected spans from >=2 threads, got tids {tids:?}"
    );
    for phase in ["sample", "prep_batch", "attention", "backward"] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "no span named {phase:?} in traced run"
        );
    }

    let json = trace::to_chrome_json(&spans);
    let doc = Json::parse(&json).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("ts").and_then(Json::as_num).is_some());
        assert!(ev.get("dur").and_then(Json::as_num).is_some());
        assert!(ev.get("tid").and_then(Json::as_num).is_some());
    }
}

#[test]
fn run_report_names_figure7_phases_and_roundtrips_as_json() {
    let _g = serial();
    let mut rep = RunReporter::start();
    rep.set_meta("model", "TGAT");
    rep.set_meta("dataset", "Wiki");

    // The reporter consumes the `EpochStats` the trainer hands back,
    // so drive the epoch loop directly, the way the CLI does.
    let (ctx, split, trainer, mut model, mut opt) = {
        use tgl_data::{generate, DatasetSpec, Split};
        use tgl_harness::{TrainConfig, Trainer};
        use tgl_models::{OptFlags, TemporalModel, Tgat};
        let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
        let (g, _) = generate(&spec);
        let ctx = tglite::TContext::new(g.clone());
        let model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 42);
        let opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
        let split = Split::standard(&g);
        let trainer = Trainer::new(
            TrainConfig { batch_size: 100, epochs: 1, lr: 1e-3, seed: 0 },
            spec.n_src as u32,
            spec.num_nodes() as u32,
        );
        (ctx, split, trainer, model, opt)
    };
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    rep.record_epoch(0, &stats);
    let (test_ap, test_s) = trainer.evaluate(&mut model, &ctx, split.test.clone());
    let report = rep.finish(test_ap, test_s);

    let epoch = &report.epochs[0];
    for phase in ["sample", "prep_batch", "time_nbrs", "attention", "backward"] {
        assert!(
            epoch.phases_s.iter().any(|(n, s)| n == phase && *s > 0.0),
            "epoch phases missing {phase:?}: {:?}",
            epoch.phases_s
        );
    }
    assert!(
        epoch.counters.iter().any(|(n, v)| n == "cache.hits" && *v > 0),
        "epoch counter delta missing cache.hits: {:?}",
        epoch.counters
    );

    let rendered = report.to_json();
    let doc = Json::parse(&rendered).expect("run report must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("tgl-run-report/v3")
    );
    let epochs = doc.get("epochs").and_then(Json::as_arr).expect("epochs");
    assert_eq!(epochs.len(), 1);
    assert!(epochs[0].get("phases_s").is_some());
    assert!(epochs[0].get("hists").is_some());
    assert!(doc.get("counters_total").is_some());
    let health = doc.get("health").expect("v2 report carries a health section");
    assert!(health.get("policy").and_then(Json::as_str).is_some());
    assert!(health.get("status").and_then(Json::as_str).is_some());
}

/// The acceptance bar for the telemetry layer: one reported epoch on
/// the accelerator placement must populate all five latency histogram
/// families, their quantiles must appear in the v2 run report, and the
/// live endpoint must expose the same families in Prometheus text
/// format alongside `/healthz` and the published `/report.json`.
#[test]
fn live_metrics_endpoint_and_v2_report_cover_latency_histograms() {
    let _g = serial();
    set_threads(2);
    let addr = tglite::obs::expo::start("127.0.0.1:0").expect("metrics server bind");

    let cfg = obs_cfg();
    let mut rep = RunReporter::start();
    let (ctx, split, trainer, mut model, mut opt) = {
        use tgl_data::{generate, Split};
        use tgl_harness::Trainer;
        use tgl_models::{OptFlags, TemporalModel, Tgat};
        let (g, _) = generate(&cfg.dataset);
        // Accel placement: every batch crosses the (simulated) link, so
        // `transfer.latency_ns` records alongside step/sampler/gemm;
        // two pool threads make `pool.wait_ns` record too.
        let ctx = tglite::TContext::with_device(g.clone(), tgl_device::Device::Accel);
        let model = Tgat::new(&ctx, cfg.model_cfg, OptFlags::all(), 42);
        let opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
        let split = Split::standard(&g);
        let trainer = Trainer::new(
            cfg.train_cfg,
            cfg.dataset.n_src as u32,
            cfg.dataset.num_nodes() as u32,
        );
        (ctx, split, trainer, model, opt)
    };
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    rep.record_epoch(0, &stats);
    let report = rep.finish(0.5, 0.1);
    set_threads(1);

    const FAMILIES: [&str; 5] = [
        "step.latency_ns",
        "sampler.latency_ns",
        "transfer.latency_ns",
        "gemm.latency_ns",
        "pool.wait_ns",
    ];
    let doc = Json::parse(&report.to_json()).expect("report JSON");
    let hists = doc.get("histograms").expect("histograms section");
    for fam in FAMILIES {
        let h = hists
            .get(fam)
            .unwrap_or_else(|| panic!("report histograms missing {fam:?}"));
        assert!(
            h.get("count").and_then(Json::as_num).unwrap_or(0.0) > 0.0,
            "{fam}: no samples recorded"
        );
        for q in ["p50", "p90", "p99", "max"] {
            assert!(
                h.get(q).and_then(Json::as_num).is_some(),
                "{fam}: quantile {q} missing from report"
            );
        }
    }

    let addr = addr.to_string();
    let (code, body) = tglite::obs::expo::http_get(&addr, "/metrics").expect("scrape /metrics");
    assert_eq!(code, 200, "metrics scrape failed: {body}");
    for mangled in [
        "tgl_step_latency_ns",
        "tgl_sampler_latency_ns",
        "tgl_transfer_latency_ns",
        "tgl_gemm_latency_ns",
        "tgl_pool_wait_ns",
    ] {
        assert!(
            body.contains(&format!("# TYPE {mangled} histogram")),
            "/metrics missing histogram family {mangled}"
        );
        assert!(
            body.contains(&format!("{mangled}_bucket{{le=\"+Inf\"}}")),
            "/metrics missing +Inf bucket for {mangled}"
        );
    }
    let (code, health) = tglite::obs::expo::http_get(&addr, "/healthz").expect("scrape /healthz");
    assert!(code == 200 || code == 503, "unexpected /healthz code {code}");
    assert!(health.contains("\"status\""), "healthz body: {health}");
    let (code, rjson) =
        tglite::obs::expo::http_get(&addr, "/report.json").expect("scrape /report.json");
    assert_eq!(code, 200, "no report published: {rjson}");
    let pdoc = Json::parse(&rjson).expect("published report must be valid JSON");
    assert_eq!(
        pdoc.get("schema").and_then(Json::as_str),
        Some("tgl-run-report/v3")
    );
}

/// Poisoned parameters must surface as structured health events, not a
/// crash: under the default `warn` policy a NaN loss skips the batch,
/// records a `trainer.loss` event and advances the
/// `health.nonfinite_loss` counter, and the epoch still completes.
#[test]
fn injected_nan_loss_is_a_health_event_not_a_panic() {
    let _g = serial();
    use tgl_data::{generate, DatasetSpec, Split};
    use tgl_harness::{HealthPolicy, TrainConfig, Trainer};
    use tgl_models::{OptFlags, TemporalModel, Tgat};
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(20);
    let (g, _) = generate(&spec);
    let ctx = tglite::TContext::new(g.clone());
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 7);
    // Poison the weights: every forward pass now produces a NaN loss.
    // (All of them — the segment kernels sanitize non-finite values in
    // isolated spots, so a single poisoned tensor can slip through.)
    for p in model.parameters() {
        p.with_data_mut(|d| d.fill(f32::NAN));
    }
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
    let split = Split::standard(&g);
    let trainer = Trainer::new(
        TrainConfig { batch_size: 200, epochs: 1, lr: 1e-3, seed: 0 },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    )
    .with_health(HealthPolicy::Warn);

    let events0 = tglite::obs::health::events().len();
    let nonfinite0 = metrics::get("health.nonfinite_loss");
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);

    let events = tglite::obs::health::events();
    assert!(
        events.len() > events0,
        "NaN loss recorded no health events"
    );
    assert!(
        events[events0..].iter().any(|e| e.source == "trainer.loss"),
        "no trainer.loss event among {:?}",
        events[events0..].iter().map(|e| e.source).collect::<Vec<_>>()
    );
    assert!(
        metrics::get("health.nonfinite_loss") > nonfinite0,
        "health.nonfinite_loss counter did not advance"
    );
    // Every batch was skipped, so the mean loss over zero batches is 0.
    assert_eq!(stats.loss, 0.0, "skipped batches should not contribute loss");
}

#[test]
fn training_run_advances_cache_and_transfer_counters() {
    let _g = serial();
    let cache_before = metrics::get("cache.hits");
    let h2d_before = metrics::get("transfer.h2d_bytes");
    let dedup_before = metrics::get("dedup.rows_saved");
    run_experiment(&obs_cfg());
    assert!(
        metrics::get("cache.hits") > cache_before,
        "TGLite+opt run produced no cache hits"
    );
    assert!(
        metrics::get("transfer.h2d_bytes") > h2d_before,
        "run moved no bytes across the tier boundary"
    );
    assert!(
        metrics::get("dedup.rows_saved") > dedup_before,
        "dedup saved no rows on a repeat-heavy Wiki stream"
    );
}
