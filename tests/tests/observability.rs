//! Acceptance suite for the unified observability layer (`tgl-obs`):
//! a real TGAT training run must (a) record trace spans from at least
//! two distinct threads, exported as Chrome-trace JSON that the
//! in-tree parser accepts, (b) produce a structured run report whose
//! per-epoch phase breakdown names the paper's Figure-7 operations,
//! and (c) leave the subsystem counters (cache hits, transfer bytes)
//! visibly advanced.
//!
//! Everything observability touches is process-global (trace sink,
//! phase map, counter registry, thread pool), so every test holds the
//! `serial()` lock and restores the default state on the way out.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{DatasetKind, Json};
use tgl_harness::{
    run_experiment, ExperimentConfig, Framework, ModelKind, Placement, RunReporter,
};
use tgl_models::ModelConfig;
use tgl_runtime::set_threads;
use tglite::obs::{metrics, trace};

/// Serializes tests: trace sink, phase map, and pool size are global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cheap TGAT epoch with the paper-default layer sizes (batches
/// large enough that the tensor kernels dispatch to pool workers).
fn obs_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        Framework::TgLiteOpt,
        ModelKind::Tgat,
        DatasetKind::Wiki,
        Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(10);
    cfg.train_cfg.epochs = 1;
    cfg
}

#[test]
fn traced_run_spans_two_threads_and_exports_valid_chrome_json() {
    let _g = serial();
    set_threads(2);
    trace::enable(true);
    trace::take(); // discard anything a prior test left behind
    run_experiment(&obs_cfg());
    let spans = trace::take();
    trace::enable(false);
    set_threads(1);

    assert!(!spans.is_empty(), "traced run recorded no spans");
    let mut tids: Vec<u32> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= 2,
        "expected spans from >=2 threads, got tids {tids:?}"
    );
    for phase in ["sample", "prep_batch", "attention", "backward"] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "no span named {phase:?} in traced run"
        );
    }

    let json = trace::to_chrome_json(&spans);
    let doc = Json::parse(&json).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("ts").and_then(Json::as_num).is_some());
        assert!(ev.get("dur").and_then(Json::as_num).is_some());
        assert!(ev.get("tid").and_then(Json::as_num).is_some());
    }
}

#[test]
fn run_report_names_figure7_phases_and_roundtrips_as_json() {
    let _g = serial();
    let mut rep = RunReporter::start();
    rep.set_meta("model", "TGAT");
    rep.set_meta("dataset", "Wiki");

    // The reporter consumes the `EpochStats` the trainer hands back,
    // so drive the epoch loop directly, the way the CLI does.
    let (ctx, split, trainer, mut model, mut opt) = {
        use tgl_data::{generate, DatasetSpec, Split};
        use tgl_harness::{TrainConfig, Trainer};
        use tgl_models::{OptFlags, TemporalModel, Tgat};
        let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
        let (g, _) = generate(&spec);
        let ctx = tglite::TContext::new(g.clone());
        let model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 42);
        let opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
        let split = Split::standard(&g);
        let trainer = Trainer::new(
            TrainConfig { batch_size: 100, epochs: 1, lr: 1e-3, seed: 0 },
            spec.n_src as u32,
            spec.num_nodes() as u32,
        );
        (ctx, split, trainer, model, opt)
    };
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    rep.record_epoch(0, &stats);
    let (test_ap, test_s) = trainer.evaluate(&mut model, &ctx, split.test.clone());
    let report = rep.finish(test_ap, test_s);

    let epoch = &report.epochs[0];
    for phase in ["sample", "prep_batch", "time_nbrs", "attention", "backward"] {
        assert!(
            epoch.phases_s.iter().any(|(n, s)| n == phase && *s > 0.0),
            "epoch phases missing {phase:?}: {:?}",
            epoch.phases_s
        );
    }
    assert!(
        epoch.counters.iter().any(|(n, v)| n == "cache.hits" && *v > 0),
        "epoch counter delta missing cache.hits: {:?}",
        epoch.counters
    );

    let rendered = report.to_json();
    let doc = Json::parse(&rendered).expect("run report must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("tgl-run-report/v1")
    );
    let epochs = doc.get("epochs").and_then(Json::as_arr).expect("epochs");
    assert_eq!(epochs.len(), 1);
    assert!(epochs[0].get("phases_s").is_some());
    assert!(doc.get("counters_total").is_some());
}

#[test]
fn training_run_advances_cache_and_transfer_counters() {
    let _g = serial();
    let cache_before = metrics::get("cache.hits");
    let h2d_before = metrics::get("transfer.h2d_bytes");
    let dedup_before = metrics::get("dedup.rows_saved");
    run_experiment(&obs_cfg());
    assert!(
        metrics::get("cache.hits") > cache_before,
        "TGLite+opt run produced no cache hits"
    );
    assert!(
        metrics::get("transfer.h2d_bytes") > h2d_before,
        "run moved no bytes across the tier boundary"
    );
    assert!(
        metrics::get("dedup.rows_saved") > dedup_before,
        "dedup saved no rows on a repeat-heavy Wiki stream"
    );
}
