//! Property-based integration tests over the framework's core
//! invariants, spanning graph, sampler, core-operator, and tensor
//! crates.
//!
//! Each property is checked over many randomized cases drawn from a
//! seeded in-tree RNG, so runs are deterministic and need no external
//! property-testing framework.

use std::sync::Arc;

use tgl_graph::TemporalGraph;
use tgl_runtime::rng::{Rng, SeedableRng, StdRng};
use tgl_sampler::{SamplingStrategy, TemporalSampler};
use tgl_tensor::ops::{segment_softmax, segment_sum};
use tgl_tensor::Tensor;
use tglite::{op, TBlock, TContext};

const CASES: usize = 64;

/// Random small temporal graph: up to 12 nodes, up to 60 edges.
fn random_graph(rng: &mut StdRng) -> Arc<TemporalGraph> {
    let n_edges = rng.gen_range(1usize..60);
    let mut edges: Vec<(u32, u32, f64)> = (0..n_edges)
        .map(|_| {
            (
                rng.gen_range(0u32..12),
                rng.gen_range(0u32..12),
                rng.gen_range(0.0f64..1000.0),
            )
        })
        .collect();
    let n = rng.gen_range(2usize..12).max(
        edges
            .iter()
            .map(|&(s, d, _)| s.max(d) as usize + 1)
            .max()
            .unwrap_or(1),
    );
    for e in edges.iter_mut() {
        e.2 = e.2.max(0.001);
    }
    Arc::new(TemporalGraph::from_edges(n, edges))
}

/// The sampler never returns an edge at or after the query time, never
/// exceeds k per destination, and its dst_index is valid and
/// non-decreasing.
#[test]
fn sampler_respects_temporal_constraint() {
    let mut rng = StdRng::seed_from_u64(0x5A1);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let k = rng.gen_range(1usize..6);
        let n_queries = rng.gen_range(1usize..20);
        let nodes: Vec<u32> = (0..n_queries)
            .map(|_| rng.gen_range(0u32..12) % g.num_nodes() as u32)
            .collect();
        let times: Vec<f64> = (0..n_queries)
            .map(|_| rng.gen_range(0.0f64..1200.0))
            .collect();
        let strategy = if rng.gen_bool(0.5) {
            SamplingStrategy::Uniform
        } else {
            SamplingStrategy::Recent
        };
        let s = TemporalSampler::new(k, strategy)
            .with_threads(2)
            .sample(&g.tcsr(), &nodes, &times);
        // Temporal constraint: strictly earlier.
        for (e, &d) in s.dst_index.iter().enumerate() {
            assert!(d < nodes.len());
            assert!(
                s.src_times[e] < times[d],
                "edge at t={} for query t={}",
                s.src_times[e],
                times[d]
            );
        }
        assert!(s.dst_index.windows(2).all(|w| w[0] <= w[1]));
        // Per-destination cap.
        let mut counts = vec![0usize; nodes.len()];
        for &d in &s.dst_index {
            counts[d] += 1;
        }
        assert!(counts.iter().all(|&c| c <= k));
    }
}

/// dedup followed by its inversion hook restores the original row
/// layout for any destination multiset.
#[test]
fn dedup_invert_is_identity() {
    let mut rng = StdRng::seed_from_u64(0xDED);
    for _ in 0..CASES {
        let n_pairs = rng.gen_range(1usize..40);
        let nodes: Vec<u32> = (0..n_pairs).map(|_| rng.gen_range(0u32..8)).collect();
        let times: Vec<f64> = (0..n_pairs)
            .map(|_| rng.gen_range(0u32..5) as f64)
            .collect();
        let g = Arc::new(TemporalGraph::from_edges(8, vec![(0, 1, 1.0)]));
        let ctx = TContext::new(g);
        let blk = TBlock::new(&ctx, 0, nodes.clone(), times.clone());
        op::dedup(&blk);
        // Output rows encode (node, time) so the inversion is checkable.
        let rows: Vec<f32> = blk.with_dst(|n, t| {
            n.iter()
                .zip(t)
                .map(|(&a, &b)| a as f32 * 1000.0 + b as f32)
                .collect()
        });
        let k = rows.len();
        let restored = blk.run_hooks(Tensor::from_vec(rows, [k, 1]));
        let expect: Vec<f32> = nodes
            .iter()
            .zip(&times)
            .map(|(&a, &b)| a as f32 * 1000.0 + b as f32)
            .collect();
        assert_eq!(restored.to_vec(), expect);
    }
}

/// segment_sum equals a naive per-group accumulation.
#[test]
fn segment_sum_matches_naive() {
    let mut rng = StdRng::seed_from_u64(0x5E6);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..50);
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let nseg = rng.gen_range(1usize..8);
        let seed: u64 = rng.gen();
        let seg: Vec<usize> = (0..n)
            .map(|i| ((seed as usize).wrapping_add(i * 7919)) % nseg)
            .collect();
        let t = Tensor::from_vec(vals.clone(), [n, 1]);
        let got = segment_sum(&t, &seg, nseg).to_vec();
        let mut naive = vec![0.0f32; nseg];
        for (i, &s) in seg.iter().enumerate() {
            naive[s] += vals[i];
        }
        for (a, b) in got.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}

/// segment_softmax rows are positive and sum to 1 within each non-empty
/// segment.
#[test]
fn segment_softmax_normalizes() {
    let mut rng = StdRng::seed_from_u64(0x50F);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..50);
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-20.0f32..20.0)).collect();
        let nseg = rng.gen_range(1usize..6);
        let seg: Vec<usize> = (0..n).map(|i| i % nseg).collect();
        let y = segment_softmax(&Tensor::from_vec(vals, [n, 1]), &seg, nseg).to_vec();
        assert!(y.iter().all(|&v| v > 0.0 && v.is_finite()));
        let mut sums = vec![0.0f32; nseg];
        for (i, &s) in seg.iter().enumerate() {
            sums[s] += y[i];
        }
        for (s, &total) in sums.iter().enumerate() {
            if seg.contains(&s) {
                assert!((total - 1.0).abs() < 1e-4, "segment {s} sums to {total}");
            }
        }
    }
}

/// Every T-CSR adjacency entry corresponds to a real edge of the graph
/// with matching endpoints and timestamp.
#[test]
fn tcsr_entries_are_real_edges() {
    let mut rng = StdRng::seed_from_u64(0x7C5);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let csr = g.tcsr();
        for v in 0..g.num_nodes() as u32 {
            for (nbr, eid, t) in csr.neighbors(v) {
                let (s, d, et) = g.edge(eid as usize);
                assert_eq!(et, t);
                assert!(
                    (s == v && d == nbr) || (d == v && s == nbr),
                    "entry ({v}, {nbr}) does not match edge ({s}, {d})"
                );
            }
        }
    }
}

/// Mailbox circular buffers keep exactly the last `slots` mails per
/// node, and `latest` always returns the most recent one.
#[test]
fn mailbox_circular_invariant() {
    use tglite::tensor::Tensor;
    use tglite::{Device, Mailbox};
    let mut rng = StdRng::seed_from_u64(0x3A1);
    for _ in 0..CASES {
        let slots = rng.gen_range(1usize..4);
        let n_writes = rng.gen_range(1usize..12);
        let writes: Vec<f64> = (0..n_writes)
            .map(|_| rng.gen_range(0.0f64..100.0))
            .collect();
        let mb = Mailbox::new(1, slots, 1, Device::Host);
        for (i, &t) in writes.iter().enumerate() {
            mb.store(&[0], &Tensor::from_vec(vec![i as f32], [1, 1]), &[t]);
        }
        let (mail, times) = mb.latest(&[0]);
        assert_eq!(mail.to_vec(), vec![(writes.len() - 1) as f32]);
        assert_eq!(times, vec![*writes.last().unwrap()]);
        let (all, _, owners) = mb.all_slots(&[0]);
        assert_eq!(all.dims(), &[slots, 1][..]);
        assert!(owners.iter().all(|&o| o == 0));
        // Slots hold the last `min(slots, writes)` values.
        let kept: std::collections::HashSet<i64> =
            all.to_vec().iter().map(|&v| v as i64).collect();
        for i in writes.len().saturating_sub(slots)..writes.len() {
            assert!(kept.contains(&(i as i64)), "mail {i} evicted too early");
        }
    }
}

/// Memory stores are exact and per-node isolated.
#[test]
fn memory_store_isolated() {
    use tglite::tensor::Tensor;
    use tglite::{Device, Memory};
    let mut rng = StdRng::seed_from_u64(0x3E3);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..8);
        let n_updates = rng.gen_range(1usize..20);
        let mem = Memory::new(n, 1, Device::Host);
        let mut expect = vec![(0.0f32, 0.0f64); n];
        for _ in 0..n_updates {
            let node = rng.gen_range(0usize..8) % n;
            let v = rng.gen_range(-5.0f32..5.0);
            let t = rng.gen_range(0.0f64..50.0);
            mem.store(&[node as u32], &Tensor::from_vec(vec![v], [1, 1]), &[t]);
            expect[node] = (v, t);
        }
        for (i, &(v, t)) in expect.iter().enumerate() {
            assert_eq!(mem.rows(&[i as u32]).to_vec(), vec![v]);
            assert_eq!(mem.times(&[i as u32]), vec![t]);
        }
    }
}

/// Chronological splits partition the edge list for any fractions.
#[test]
fn split_partitions_edges() {
    let mut rng = StdRng::seed_from_u64(0x5B1);
    for _ in 0..CASES {
        let edges = rng.gen_range(1usize..200);
        let train = rng.gen_range(0.1f64..0.8);
        let val_frac = rng.gen_range(0.0f64..0.19);
        let g = TemporalGraph::from_edges(2, (0..edges).map(|i| (0, 1, i as f64)).collect());
        let s = tgl_data::chronological_split(&g, train, val_frac);
        assert_eq!(s.train.start, 0);
        assert_eq!(s.train.end, s.val.start);
        assert_eq!(s.val.end, s.test.start);
        assert_eq!(s.test.end, edges);
    }
}

/// coalesce(Latest) keeps exactly one edge per destination with the
/// maximum timestamp among that destination's edges.
#[test]
fn coalesce_latest_picks_max_time() {
    let mut rng = StdRng::seed_from_u64(0xC0A);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let k = rng.gen_range(2usize..6);
        let ctx = TContext::new(Arc::clone(&g));
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let times = vec![2000.0; nodes.len()];
        let blk = TBlock::new(&ctx, 0, nodes, times);
        tglite::TSampler::new(k, SamplingStrategy::Recent).sample(&blk);
        let before: Vec<(usize, f64)> = blk
            .dst_index()
            .iter()
            .zip(blk.src_times())
            .map(|(&d, t)| (d, t))
            .collect();
        op::coalesce(&blk, op::CoalesceBy::Latest);
        let mut max_per_dst = std::collections::HashMap::new();
        for (d, t) in before {
            let e = max_per_dst.entry(d).or_insert(t);
            if t > *e {
                *e = t;
            }
        }
        assert_eq!(blk.num_edges(), max_per_dst.len());
        for (&d, t) in blk.dst_index().iter().zip(blk.src_times()) {
            assert_eq!(t, max_per_dst[&d]);
        }
    }
}
