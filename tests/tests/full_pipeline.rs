//! End-to-end training pipelines across crates: data generation →
//! TGLite abstractions → models → harness, for all four models and
//! all three framework settings.

use tgl_harness::{run_experiment, ExperimentConfig, Framework, ModelKind, Placement};
use tgl_integration::{assert_logits_close, batch, ctx, tiny_wiki};
use tgl_models::{ModelConfig, OptFlags, TemporalModel};

fn tiny_cfg(fw: Framework, model: ModelKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        fw,
        model,
        tgl_data::DatasetKind::Wiki,
        Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(10);
    cfg.model_cfg = ModelConfig::tiny();
    cfg.train_cfg.epochs = 3;
    cfg.train_cfg.lr = 2e-3;
    cfg.train_cfg.batch_size = 60;
    cfg
}

#[test]
fn all_models_learn_above_random_with_tglite() {
    for model in ModelKind::all() {
        let mut cfg = tiny_cfg(Framework::TgLite, model);
        // The memory-only models need a few more passes over the tiny
        // stream to pull ahead of random.
        if matches!(model, ModelKind::Jodie | ModelKind::Apan) {
            cfg.dataset = tgl_data::DatasetSpec::of(tgl_data::DatasetKind::Wiki).scaled_down(6);
            cfg.train_cfg.epochs = 4;
        }
        let r = run_experiment(&cfg);
        assert!(
            r.best_val_ap > 0.55,
            "{}: val AP {:.3} not above random",
            model.label(),
            r.best_val_ap
        );
        assert!(r.test_ap.is_finite());
        assert!(r.epochs.iter().all(|e| e.loss.is_finite()));
    }
}

#[test]
fn baseline_framework_also_learns() {
    let r = run_experiment(&tiny_cfg(Framework::Tgl, ModelKind::Tgat));
    assert!(r.best_val_ap > 0.55, "TGL TGAT val AP {:.3}", r.best_val_ap);
}

#[test]
fn epoch_losses_decrease_over_training() {
    let r = run_experiment(&tiny_cfg(Framework::TgLite, ModelKind::Tgat));
    let first = r.epochs.first().unwrap().loss;
    let last = r.epochs.last().unwrap().loss;
    assert!(last < first, "loss {first} -> {last} did not drop");
}

#[test]
fn frameworks_agree_on_untrained_tgat_logits() {
    // Same seeds => the baseline (MFG) and TGLite (TBlock) stacks must
    // produce identical first-batch logits: they share kernels and
    // differ only in orchestration.
    let (g, spec) = tiny_wiki();
    let c1 = ctx(&g);
    let mut a = tgl_baseline::BaselineTgat::new(&c1, ModelConfig::tiny(), 3);
    let c2 = ctx(&g);
    let mut b = tgl_models::Tgat::new(&c2, ModelConfig::tiny(), OptFlags::none(), 3);
    let bt = batch(&g, &spec, 100..160, 0);
    let (p1, n1) = a.forward(&c1, &bt);
    let (p2, n2) = b.forward(&c2, &bt);
    assert_logits_close(&p1.to_vec(), &p2.to_vec(), 1e-4, "pos");
    assert_logits_close(&n1.to_vec(), &n2.to_vec(), 1e-4, "neg");
}

#[test]
fn memory_models_roundtrip_state_across_batches() {
    let (g, spec) = tiny_wiki();
    let c = ctx(&g);
    let mut m = tgl_models::Tgn::new(&c, ModelConfig::tiny(), OptFlags::none(), 0);
    // First batch seeds memory; second batch must observe it.
    let b1 = batch(&g, &spec, 0..60, 1);
    m.forward(&c, &b1);
    let mem_after_1 = g.memory().rows(&[b1.srcs()[0]]).to_vec();
    let b2 = batch(&g, &spec, 60..120, 2);
    m.forward(&c, &b2);
    // Reset restores zeros.
    m.reset_state(&c);
    let zeroed = g.memory().rows(&[b1.srcs()[0]]).to_vec();
    assert!(mem_after_1.iter().any(|&v| v != 0.0), "memory never written");
    assert!(zeroed.iter().all(|&v| v == 0.0), "reset_state failed");
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        let r = run_experiment(&tiny_cfg(Framework::TgLite, ModelKind::Tgat));
        (r.epochs[0].loss, r.best_val_ap)
    };
    let (l1, ap1) = run();
    let (l2, ap2) = run();
    assert_eq!(l1, l2, "first-epoch loss must be deterministic");
    assert_eq!(ap1, ap2, "val AP must be deterministic");
}
