//! Acceptance suite for the pipelined dataflow trainer: a sampler
//! stage prefetching batches over a bounded channel must be
//! *observationally invisible* next to the sequential reference —
//! bitwise-identical epoch losses and validation AP at every queue
//! depth and worker-pool width, identical deltas on the work counters
//! the prefetched stages own (sampling, dedup, preload, transfers),
//! and unchanged health semantics (a poisoned batch is skipped, not
//! crashed, and the flight recorder still yields a parseable dump).
//!
//! The counters and the thread pool are process-global, so every test
//! holds the `serial()` lock and restores a single-threaded pool.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{generate, DatasetKind, DatasetSpec, Json, Split};
use tgl_harness::{HealthPolicy, TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tgl_runtime::set_threads;
use tglite::obs::metrics;
use tglite::TContext;

/// Serializes tests: counters, health events, and pool size are global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The counters owned by the stages the pipeline moves off-thread.
/// `tensor.pool.*` is deliberately absent: pool hit/miss depends on
/// allocation interleaving across threads, not on the work performed.
const TRACKED: [&str; 8] = [
    "sampler.queries",
    "sampler.neighbors",
    "dedup.rows_in",
    "dedup.rows_saved",
    "preload.calls",
    "preload.tensors_moved",
    "transfer.count",
    "transfer.h2d_bytes",
];

fn counters() -> Vec<u64> {
    TRACKED.iter().map(|n| metrics::get(n)).collect()
}

/// Per-epoch `(loss, val_ap)` bits plus tracked counter deltas.
type RunResult = (Vec<(u32, u64)>, Vec<u64>);

/// Trains 2 epochs of TGAT (all operators on) at the given pipeline
/// depth, returning per-epoch `(loss, val_ap)` bits and the tracked
/// counter deltas.
fn run(depth: usize) -> RunResult {
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(20);
    let (g, _) = generate(&spec);
    let split = Split::standard(&g);
    let ctx = TContext::new(g.clone());
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 5);
    let trainer = Trainer::new(
        TrainConfig {
            batch_size: 60,
            epochs: 2,
            lr: 1e-3,
            seed: 9,
        },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    )
    .with_pipeline(depth);
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
    let before = counters();
    let stats = (0..2)
        .map(|e| {
            let s = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, e);
            (s.loss.to_bits(), s.val_ap.to_bits())
        })
        .collect();
    let after = counters();
    let deltas = before.iter().zip(&after).map(|(b, a)| a - b).collect();
    (stats, deltas)
}

/// The tentpole contract: at queue depths 1, 2, and 4 and pool widths
/// 1 and 4, the pipelined trainer reproduces the sequential epoch
/// losses and validation AP *bitwise*, and fires each stage counter
/// exactly as often — sampling/dedup/staging moved threads, but not
/// semantics. The sequential reference itself must also be invariant
/// across pool widths (the runtime's determinism contract).
#[test]
fn pipelined_matches_sequential_bitwise_across_depths_and_threads() {
    let _g = serial();
    let mut baseline: Option<RunResult> = None;
    for threads in [1usize, 4] {
        set_threads(threads);
        let sequential = run(0);
        assert!(
            sequential.1[0] > 0 && sequential.1[2] > 0,
            "reference run exercised no sampling/dedup work: {:?}",
            sequential.1
        );
        match &baseline {
            None => baseline = Some(sequential.clone()),
            Some(b) => assert_eq!(
                b, &sequential,
                "sequential reference not invariant across thread counts"
            ),
        }
        for depth in [1usize, 2, 4] {
            let piped = run(depth);
            assert_eq!(
                sequential.0, piped.0,
                "losses/val-AP diverged at depth {depth}, {threads} threads"
            );
            assert_eq!(
                sequential.1, piped.1,
                "counter deltas {TRACKED:?} diverged at depth {depth}, {threads} threads"
            );
        }
    }
    set_threads(1);
}

/// Health semantics survive pipelining: with poisoned parameters every
/// prefetched batch produces a NaN loss, and the `warn` policy must
/// skip each one (recording `trainer.loss` events) while the epoch —
/// including the sampler-stage shutdown — completes cleanly, and the
/// flight recorder still renders a parseable dump.
#[test]
fn pipelined_nan_batches_are_skipped_not_crashed() {
    let _g = serial();
    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(20);
    let (g, _) = generate(&spec);
    let split = Split::standard(&g);
    let ctx = TContext::new(g.clone());
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 7);
    for p in model.parameters() {
        p.with_data_mut(|d| d.fill(f32::NAN));
    }
    let trainer = Trainer::new(
        TrainConfig {
            batch_size: 60,
            epochs: 1,
            lr: 1e-3,
            seed: 3,
        },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    )
    .with_health(HealthPolicy::Warn)
    .with_pipeline(2);
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
    let events0 = tglite::obs::health::events().len();
    let nonfinite0 = metrics::get("health.nonfinite_loss");
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    assert_eq!(stats.loss, 0.0, "skipped batches should contribute no loss");
    let events = tglite::obs::health::events();
    assert!(
        events[events0..].iter().any(|e| e.source == "trainer.loss"),
        "pipelined NaN loss recorded no trainer.loss health event"
    );
    assert!(
        metrics::get("health.nonfinite_loss") > nonfinite0,
        "health.nonfinite_loss counter did not advance under pipelining"
    );
    let dump = tglite::obs::flight::to_json("pipeline-test");
    let doc = Json::parse(&dump).expect("flight dump must stay parseable");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("tgl-flight/v1"),
        "unexpected flight dump schema"
    );
}
