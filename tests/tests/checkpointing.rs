//! Model checkpointing across the full stack: TGL's scripts save the
//! best epoch and reload it before test inference; this verifies the
//! same workflow works here for every model.

use tgl_integration::{assert_logits_close, batch, ctx, tiny_wiki};
use tgl_models::{Apan, Jodie, ModelConfig, OptFlags, TemporalModel, Tgat, Tgn};
use tglite::tensor::no_grad;
use tglite::TContext;

fn ckpt_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tgl-integration-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Builds a model on a fresh graph, saves, perturbs every parameter,
/// reloads, and verifies inference is restored exactly.
fn roundtrip<M: TemporalModel>(build: impl Fn(&TContext) -> M, name: &str) {
    let (g, spec) = tiny_wiki();
    let c = ctx(&g);
    let mut model = build(&c);
    model.set_training(false);
    let _guard = no_grad();
    let b = batch(&g, &spec, 100..160, 0);
    g.reset_state();
    let (before, _) = model.forward(&c, &b);
    let before = before.to_vec();

    let path = ckpt_path(name);
    model.save(&path).unwrap();
    for p in model.parameters() {
        p.with_data_mut(|d| d.iter_mut().for_each(|v| *v += 1.0));
    }
    g.reset_state();
    c.clear_caches();
    let (clobbered, _) = model.forward(&c, &b);
    assert_ne!(clobbered.to_vec(), before, "perturbation must change output");

    model.load(&path).unwrap();
    g.reset_state();
    c.clear_caches();
    let (after, _) = model.forward(&c, &b);
    assert_logits_close(&after.to_vec(), &before, 1e-5, name);
    std::fs::remove_file(path).ok();
}

#[test]
fn tgat_checkpoint_roundtrip() {
    roundtrip(
        |c| Tgat::new(c, ModelConfig::tiny(), OptFlags::none(), 1),
        "tgat.tglt",
    );
}

#[test]
fn tgn_checkpoint_roundtrip() {
    roundtrip(
        |c| Tgn::new(c, ModelConfig::tiny(), OptFlags::none(), 2),
        "tgn.tglt",
    );
}

#[test]
fn jodie_checkpoint_roundtrip() {
    roundtrip(
        |c| Jodie::new(c, ModelConfig::tiny(), OptFlags::none(), 3),
        "jodie.tglt",
    );
}

#[test]
fn apan_checkpoint_roundtrip() {
    roundtrip(
        |c| Apan::new(c, ModelConfig::tiny(), OptFlags::none(), 4),
        "apan.tglt",
    );
}

#[test]
fn cross_model_checkpoints_are_rejected() {
    let (g, _) = tiny_wiki();
    let c1 = ctx(&g);
    let tgat = Tgat::new(&c1, ModelConfig::tiny(), OptFlags::none(), 5);
    let path = ckpt_path("cross.tglt");
    tgat.save(&path).unwrap();
    let c2 = ctx(&g);
    let mut jodie = Jodie::new(&c2, ModelConfig::tiny(), OptFlags::none(), 5);
    let err = jodie.load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_file(path).ok();
}
