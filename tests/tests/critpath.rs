//! Acceptance suite for critical-path analysis and the flight
//! recorder: on a real traced TGAT run the analyzer's critical path
//! must land within 10% of the traced wall regardless of thread
//! count (1 vs 4), the `tgl-critpath/v1` artifact must parse with
//! the in-tree JSON parser, and an injected panic must leave a
//! parseable `flight-<ts>.json` post-mortem behind.
//!
//! The trace sink, flight rings, pool size, and `TGL_FLIGHT_DIR` are
//! all process-global, so every test holds the `serial()` lock and
//! restores the default state on the way out.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{DatasetKind, Json};
use tgl_harness::{run_experiment, ExperimentConfig, Framework, ModelKind, Placement};
use tgl_runtime::set_threads;
use tglite::obs::{critpath, flight, trace};

/// Serializes tests: trace sink, flight registry, and pool size are
/// global, and the panic test mutates `TGL_FLIGHT_DIR`.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One cheap TGAT epoch, big enough that the tensor kernels dispatch
/// to pool workers and every pipeline stage leaves spans behind.
fn obs_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_default(
        Framework::TgLiteOpt,
        ModelKind::Tgat,
        DatasetKind::Wiki,
        Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(10);
    cfg.train_cfg.epochs = 1;
    cfg
}

/// Runs one traced epoch at `threads` pool threads and returns the
/// analysis of the captured spans.
fn traced_run(threads: usize) -> critpath::Analysis {
    set_threads(threads);
    trace::enable(true);
    trace::take(); // discard anything a prior test left behind
    run_experiment(&obs_cfg());
    let spans = trace::take();
    trace::enable(false);
    set_threads(1);
    critpath::analyze(&spans)
}

/// Stage labels with nonzero serial time, as a sorted set.
fn active_stages(a: &critpath::Analysis) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = a
        .stages
        .iter()
        .filter(|s| s.serial_s > 0.0)
        .map(|s| s.stage.label())
        .collect();
    names.sort_unstable();
    names
}

/// The headline acceptance bound: the reconstructed critical path
/// must explain the traced wall clock to within 10%, whether the run
/// was fully serial (1 thread) or overlapped (4 threads) — the
/// analyzer follows actual dependencies, not thread count.
#[test]
fn critical_path_tracks_wall_at_one_and_four_threads() {
    let _g = serial();
    let one = traced_run(1);
    let four = traced_run(4);

    for (label, a) in [("1 thread", &one), ("4 threads", &four)] {
        assert!(a.wall_s > 0.0, "{label}: empty trace");
        assert!(
            a.critical_s <= a.wall_s * 1.0001 + 1e-9,
            "{label}: critical path {:.4}s exceeds wall {:.4}s",
            a.critical_s,
            a.wall_s
        );
        assert!(
            a.critical_s >= a.wall_s * 0.90,
            "{label}: critical path {:.4}s explains <90% of wall {:.4}s",
            a.critical_s,
            a.wall_s
        );
        // Efficiency is serial/wall: positive, and never more than
        // the number of threads that could have been busy at once.
        assert!(
            a.overlap_efficiency > 0.0 && a.overlap_efficiency <= a.threads as f64 + 1e-9,
            "{label}: overlap efficiency {:.3} outside (0, {}]",
            a.overlap_efficiency,
            a.threads
        );
    }

    // The batch schedule is fixed by the dataset, not the pool size.
    assert_eq!(one.steps, four.steps, "step count changed with threads");
    assert!(one.steps > 0, "no step regions observed");
    assert_eq!(
        active_stages(&one),
        active_stages(&four),
        "active stage set changed with thread count"
    );
    for stage in ["sample", "transfer", "forward", "backward", "opt"] {
        assert!(
            active_stages(&one).contains(&stage),
            "traced run missing {stage:?} stage: {:?}",
            active_stages(&one)
        );
    }
    // More workers must not make the dependency-respecting serial
    // total shrink below what one thread measured by a wide margin —
    // same work, just overlapped.
    assert!(
        four.threads > one.threads,
        "4-thread run recorded {} trace thread(s), 1-thread run {}",
        four.threads,
        one.threads
    );
}

/// The artifact contract: `to_json` renders `tgl-critpath/v1` that
/// the in-tree parser accepts, with per-stage rows whose serial
/// times sum to the headline serial total.
#[test]
fn critpath_artifact_parses_and_is_self_consistent() {
    let _g = serial();
    let a = traced_run(2);
    let doc = Json::parse(&critpath::to_json(&a)).expect("critpath artifact must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("tgl-critpath/v1")
    );
    for key in [
        "wall_s",
        "busy_s",
        "serial_s",
        "critical_s",
        "wait_s",
        "overlap_efficiency",
    ] {
        assert!(
            doc.get(key).and_then(Json::as_num).is_some(),
            "artifact missing numeric {key:?}"
        );
    }
    let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
    assert_eq!(stages.len(), a.stages.len());
    let stage_sum: f64 = stages
        .iter()
        .filter_map(|s| s.get("serial_s").and_then(Json::as_num))
        .sum();
    assert!(
        (stage_sum - a.serial_s).abs() <= a.serial_s * 1e-6 + 1e-9,
        "stage serial times sum to {stage_sum:.6}, headline serial is {:.6}",
        a.serial_s
    );
}

/// The always-on flight recorder captures spans from a real run and
/// renders a parseable `tgl-flight/v1` dump on demand.
#[test]
fn flight_dump_from_real_run_parses_with_recent_spans() {
    let _g = serial();
    flight::enable(true);
    run_experiment(&obs_cfg());
    let doc = Json::parse(&flight::to_json("request")).expect("flight dump must be valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tgl-flight/v1"));
    assert_eq!(doc.get("reason").and_then(Json::as_str), Some("request"));
    let events = doc.get("events").and_then(Json::as_arr).expect("events");
    assert!(!events.is_empty(), "flight ring captured no events");
    for ev in events {
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("t_ns").and_then(Json::as_num).is_some());
        assert!(ev.get("tid").and_then(Json::as_num).is_some());
    }
    assert!(
        doc.get("counters").is_some(),
        "flight dump missing counters section"
    );
}

/// Post-mortem contract: a panic anywhere in the process must leave
/// a parseable `flight-<ts>.json` in `TGL_FLIGHT_DIR` with reason
/// "panic". Std panic hooks run before unwinding, so `catch_unwind`
/// exercises the hook without killing the test runner.
#[test]
fn injected_panic_writes_parseable_flight_dump() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("tgl-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create flight dir");
    std::env::set_var("TGL_FLIGHT_DIR", &dir);
    flight::enable(true);
    tgl_harness::install_flight_hook();
    // Record something so the dump has content, then outwait the
    // hook's 1s duplicate-dump suppression window in case an earlier
    // test dumped recently.
    drop(tglite::obs::span("flight-panic-test"));
    std::thread::sleep(std::time::Duration::from_millis(1100));

    let result = std::panic::catch_unwind(|| panic!("injected: flight dump test"));
    assert!(result.is_err(), "injected panic did not propagate");
    std::env::remove_var("TGL_FLIGHT_DIR");

    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("read flight dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.ends_with(".json"))
        })
        .collect();
    assert!(
        !dumps.is_empty(),
        "panic hook wrote no flight-*.json into {}",
        dir.display()
    );
    let body = std::fs::read_to_string(&dumps[0]).expect("read flight dump");
    let doc = Json::parse(&body).expect("panic flight dump must be valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tgl-flight/v1"));
    assert_eq!(doc.get("reason").and_then(Json::as_str), Some("panic"));
    assert!(
        doc.get("events").and_then(Json::as_arr).is_some(),
        "panic dump missing events array"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
