//! Semantic preservation of the optimization operators across the full
//! model stack: "optimization operators (which are semantic-preserving
//! transformations and does not affect model accuracy)" (paper §1).

use tgl_integration::{assert_logits_close, batch, ctx, tiny_wiki};
use tgl_models::{Apan, ModelConfig, OptFlags, TemporalModel, Tgat, Tgn};
use tglite::tensor::no_grad;

#[test]
fn tgat_all_optimizations_preserve_inference() {
    let (g, spec) = tiny_wiki();
    let c_plain = ctx(&g);
    let c_opt = ctx(&g);
    let mut plain = Tgat::new(&c_plain, ModelConfig::tiny(), OptFlags::none(), 5);
    let mut opt = Tgat::new(&c_opt, ModelConfig::tiny(), OptFlags::all(), 5);
    plain.set_training(false);
    opt.set_training(false);
    let _guard = no_grad();
    // Several consecutive batches: later ones exercise warm caches.
    for (i, start) in [(0usize, 0usize), (1, 80), (2, 160), (3, 160)] {
        let b = batch(&g, &spec, start..start + 80, i as u64);
        let (p1, n1) = plain.forward(&c_plain, &b);
        let (p2, n2) = opt.forward(&c_opt, &b);
        assert_logits_close(&p1.to_vec(), &p2.to_vec(), 1e-4, "pos batch");
        assert_logits_close(&n1.to_vec(), &n2.to_vec(), 1e-4, "neg batch");
    }
    let (hits, _) = c_opt.embed_cache().stats();
    assert!(hits > 0, "repeat batch produced no cache hits");
}

#[test]
fn tgn_dedup_preserves_training_forward() {
    let (g, spec) = tiny_wiki();
    let run = |opts: OptFlags| {
        let c = ctx(&g);
        let mut m = Tgn::new(&c, ModelConfig::tiny(), opts, 8);
        let mut out = Vec::new();
        for i in 0..3 {
            let b = batch(&g, &spec, i * 60..(i + 1) * 60, i as u64);
            let (p, _) = m.forward(&c, &b);
            out.extend(p.to_vec());
        }
        out
    };
    let plain = run(OptFlags::none());
    let dedup = run(OptFlags {
        dedup: true,
        ..OptFlags::none()
    });
    assert_logits_close(&plain, &dedup, 1e-3, "TGN dedup across batches");
}

#[test]
fn apan_time_precompute_preserves_inference() {
    let (g, spec) = tiny_wiki();
    let run = |opts: OptFlags| {
        let c = ctx(&g);
        let mut m = Apan::new(&c, ModelConfig::tiny(), opts, 4);
        m.set_training(false);
        let _guard = no_grad();
        let b = batch(&g, &spec, 50..120, 1);
        let (p, _) = m.forward(&c, &b);
        p.to_vec()
    };
    let plain = run(OptFlags::none());
    let pre = run(OptFlags {
        time_precompute: true,
        ..OptFlags::none()
    });
    assert_logits_close(&plain, &pre, 1e-4, "APAN time precompute");
}

#[test]
fn stale_cache_is_invalidated_by_clear() {
    // After a (simulated) parameter update, clear_caches must drop
    // memoized embeddings so results follow the new parameters.
    let (g, spec) = tiny_wiki();
    let c = ctx(&g);
    let mut m = Tgat::new(&c, ModelConfig::tiny(), OptFlags::all(), 6);
    m.set_training(false);
    let _guard = no_grad();
    let b = batch(&g, &spec, 0..60, 0);
    let _ = m.forward(&c, &b);
    assert!(!c.embed_cache().is_empty(), "cache should be populated");
    // Perturb a parameter in place.
    let p = &m.parameters()[0];
    p.with_data_mut(|d| d[0] += 1.0);
    c.clear_caches();
    assert!(c.embed_cache().is_empty(), "clear_caches must flush");
    let (p2, _) = m.forward(&c, &b);
    assert!(p2.to_vec().iter().all(|v| v.is_finite()));
}

#[test]
fn preload_pinned_matches_pageable_results() {
    // Data movement path must not change values.
    let (g, spec) = tiny_wiki();
    let run = |opts: OptFlags| {
        let c = ctx(&g);
        let mut m = Tgat::new(&c, ModelConfig::tiny(), opts, 9);
        let b = batch(&g, &spec, 30..90, 3);
        let (p, _) = m.forward(&c, &b);
        p.to_vec()
    };
    let plain = run(OptFlags::none());
    let pinned = run(OptFlags::preload_only());
    assert_logits_close(&plain, &pinned, 1e-5, "preload path");
}
