//! Acceptance suite for the model & data introspection layer on real
//! training runs: every `insight.*` series must be bitwise identical
//! at 1 and 4 pool threads and at pipeline depths 0 and 2 (the bag
//! travels with its batch and is flushed in batch order, so schedule
//! must not leak into the numbers); an injected per-layer pathology
//! (absurd learning rate) must be attributable to a specific named
//! parameter group through the cumulative stats, the rendered table,
//! and the `tgl-insight/v1` artifact; and an SLO rule targeting an
//! insight series must abort a `fail`-policy run deterministically,
//! leaving a flight dump that carries the insight tails.
//!
//! Everything the introspection layer touches is process-global
//! (insight registry, time-series store, rule engine, thread pool), so
//! every test holds a serial lock and restores default state on exit.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_harness::{HealthPolicy, TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tgl_runtime::set_threads;
use tglite::obs::{alert, insight, timeseries};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One epoch of TGAT on a scaled-down Wiki stream with introspection
/// on, at a given thread count and pipeline depth. Returns the final
/// loss; the insight registry and time-series store are left populated
/// for the caller to inspect.
fn insight_epoch(
    threads: usize,
    pipeline: usize,
    lr: f32,
    policy: HealthPolicy,
    rules: Option<&str>,
) -> f32 {
    set_threads(threads);
    timeseries::enable(true);
    timeseries::reset();
    tglite::obs::health::reset();
    insight::enable(true);
    insight::reset();
    match rules {
        Some(r) => alert::install(alert::RuleSet::parse(r).expect("rules parse")),
        None => alert::clear(),
    }

    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(8);
    let (g, _) = generate(&spec);
    let ctx = tglite::TContext::new(g.clone());
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 42);
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), lr);
    let split = Split::standard(&g);
    let trainer = Trainer::new(
        TrainConfig { batch_size: 100, epochs: 1, lr, seed: 0 },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    )
    .with_pipeline(pipeline)
    .with_health(policy);
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    stats.loss
}

fn teardown() {
    insight::enable(false);
    insight::reset();
    alert::clear();
    set_threads(1);
}

/// Bitwise view of the cumulative registry (NaN-safe, unlike `==`).
fn stat_bits(stats: &[insight::InsightStat]) -> Vec<(String, u64, [u64; 5])> {
    stats
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.count,
                [
                    s.mean.to_bits(),
                    s.std.to_bits(),
                    s.min.to_bits(),
                    s.max.to_bits(),
                    s.last.to_bits(),
                ],
            )
        })
        .collect()
}

/// Bitwise view of one retained series' points.
fn series_bits(name: &str) -> Vec<(u64, u64)> {
    timeseries::get(name)
        .unwrap_or_else(|| panic!("series {name} not retained"))
        .points
        .iter()
        .map(|&(i, v)| (i, v.to_bits()))
        .collect()
}

/// Names every insight family the instrumented TGAT run must produce:
/// model groups (attention projections, ffn, time encoder, predictor)
/// and data-quality series (neighbor dt, negative collisions, dedup).
fn assert_coverage(stats: &[insight::InsightStat]) {
    for needle in [
        "insight.layer.layer0.w_q.grad_norm",
        "insight.layer.layer0.w_q.weight_norm",
        "insight.layer.layer0.w_q.update_ratio",
        "insight.layer.predictor.out_fc.grad_norm",
        "insight.data.nbr_dt.mean",
        "insight.data.neg_collision_rate",
        "insight.data.dedup_saved_frac",
    ] {
        assert!(
            stats.iter().any(|s| s.name == needle && s.count > 0),
            "expected series {needle} in insight stats, have: {:?}",
            stats.iter().map(|s| s.name.as_str()).collect::<Vec<_>>()
        );
    }
}

/// The headline invariance: same run at 1 and 4 pool threads must
/// leave a bitwise-identical insight registry and retained series.
#[test]
fn insight_series_bitwise_identical_at_1_and_4_threads() {
    let _g = serial();
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let loss = insight_epoch(threads, 0, 1e-3, HealthPolicy::Off, None);
        assert!(loss.is_finite());
        let stats = insight::stats();
        assert_coverage(&stats);
        runs.push((
            stat_bits(&stats),
            insight::steps(),
            series_bits("insight.layer.layer0.w_q.update_ratio"),
            series_bits("insight.data.nbr_dt.mean"),
        ));
    }
    teardown();

    assert!(runs[0].1 > 0, "no steps flushed");
    assert_eq!(runs[0].1, runs[1].1, "step count differs across threads");
    assert_eq!(runs[0].0, runs[1].0, "insight registry differs between 1 and 4 threads");
    assert_eq!(runs[0].2, runs[1].2, "update_ratio series differs between 1 and 4 threads");
    assert_eq!(runs[0].3, runs[1].3, "nbr_dt series differs between 1 and 4 threads");
}

/// Pipeline-depth invariance: the insight bag travels with its batch
/// from the sampler thread and is flushed in batch order, so depth 2
/// must be bitwise identical to the sequential reference.
#[test]
fn insight_series_bitwise_identical_at_pipeline_0_and_2() {
    let _g = serial();
    let mut runs = Vec::new();
    for depth in [0usize, 2] {
        let loss = insight_epoch(2, depth, 1e-3, HealthPolicy::Off, None);
        assert!(loss.is_finite());
        let stats = insight::stats();
        assert_coverage(&stats);
        runs.push((
            stat_bits(&stats),
            insight::steps(),
            series_bits("insight.layer.layer0.w_q.update_ratio"),
            series_bits("insight.data.neg_collision_rate"),
        ));
    }
    teardown();

    assert_eq!(runs[0].1, runs[1].1, "step count differs across pipeline depths");
    assert_eq!(runs[0].0, runs[1].0, "insight registry differs between pipeline 0 and 2");
    assert_eq!(runs[0].2, runs[1].2, "update_ratio series differs between pipeline 0 and 2");
    assert_eq!(runs[0].3, runs[1].3, "neg_collision series differs between pipeline 0 and 2");
}

/// An injected per-layer pathology (lr so large the first Adam step
/// moves every weight by ~1e18) must be attributable to a specific
/// named parameter group: the cumulative stats carry an absurd update
/// ratio for `layer0.w_q`, the rendered table names the group, and the
/// `tgl-insight/v1` artifact round-trips with the same numbers.
#[test]
fn diverged_run_is_attributable_to_a_named_parameter_group() {
    let _g = serial();
    insight_epoch(1, 0, 1e18, HealthPolicy::Warn, None);
    let stats = insight::stats();
    let steps = insight::steps();
    // Wide enough to hold every parameter group: the top-k cut is by
    // gradient norm, and the pathology here lives in the update ratio.
    let table = insight::render_table(16);
    let artifact = insight::to_json();
    teardown();

    assert!(steps > 0);
    let wq = stats
        .iter()
        .find(|s| s.name == "insight.layer.layer0.w_q.update_ratio")
        .expect("layer0.w_q update_ratio tracked");
    assert!(
        !wq.last.is_finite() || wq.last > 1e6,
        "lr=1e18 should blow up layer0.w_q's update ratio, got {}",
        wq.last
    );
    let max_ratio = stats
        .iter()
        .filter(|s| s.name.ends_with(".update_ratio"))
        .map(|s| if s.max.is_finite() { s.max } else { f64::INFINITY })
        .fold(0.0f64, f64::max);
    assert!(max_ratio > 1e6, "no parameter group shows the pathology");

    // The table is the CLI's `--insight` surface: it must name the
    // offending group so the user can act on it.
    assert!(table.contains("layer0.w_q"), "table should name layer0.w_q:\n{table}");
    assert!(table.contains("update_ratio") || table.contains("update"), "table header:\n{table}");

    // The artifact is the machine surface: declared schema, step
    // count, and per-series summaries that match the registry.
    let doc = tgl_data::Json::parse(&artifact).expect("insight artifact parses");
    assert_eq!(
        doc.get("schema").and_then(tgl_data::Json::as_str),
        Some("tgl-insight/v1")
    );
    assert_eq!(
        doc.get("steps").and_then(tgl_data::Json::as_num),
        Some(steps as f64)
    );
    let arr = doc.get("stats").and_then(tgl_data::Json::as_arr).expect("stats array");
    assert_eq!(arr.len(), stats.len());
    assert!(arr.iter().any(|s| {
        s.get("name").and_then(tgl_data::Json::as_str)
            == Some("insight.layer.layer0.w_q.update_ratio")
    }));
}

/// An SLO rule targeting an insight series under `--health fail`: the
/// first step's absurd update ratio breaches the threshold, the run
/// aborts through the health monitor, and the post-mortem flight dump
/// carries both the reason and the insight tails.
#[test]
fn slo_rule_on_insight_series_aborts_fail_run_and_leaves_flight_dump() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("tgl-insight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create flight dir");
    std::env::set_var("TGL_FLIGHT_DIR", &dir);

    // `above` rejects non-finite values by design, but with lr=1e18
    // the very first step's ratio is huge yet finite (pre-step norms
    // are small and the Adam step is ~lr), so the rule breaches on
    // step 0 before anything goes NaN.
    let rules = "
[wq-update-ratio]
metric = insight.layer.layer0.w_q.update_ratio
above = 1e6
window = 1
for = 1
severity = fail
";
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        insight_epoch(1, 0, 1e18, HealthPolicy::Fail, Some(rules))
    }));
    teardown();
    std::env::remove_var("TGL_FLIGHT_DIR");

    let payload = result.expect_err("fail policy should abort on the insight rule");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("alert wq-update-ratio fired"),
        "panic message should name the insight alert, got {msg:?}"
    );

    let dump = std::fs::read_dir(&dir)
        .expect("read flight dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("flight dump written on alert abort");
    let text = std::fs::read_to_string(&dump).expect("read flight dump");
    std::fs::remove_dir_all(&dir).ok();
    let doc = tgl_data::Json::parse(&text).expect("flight dump is valid JSON");
    assert_eq!(
        doc.get("reason").and_then(tgl_data::Json::as_str),
        Some("alert-fail")
    );
    let ins = doc.get("insight").expect("flight dump carries insight section");
    assert!(
        ins.get("stats").is_some(),
        "flight dump insight section missing stats: {text}"
    );
}
