//! The simulated memory system end-to-end: device capacity (OOM)
//! behaviour and transfer metering, across the full training stack.
//!
//! These integration tests back the paper's Table 7 (TGL OOMs where
//! TGLite completes) and the Fig. 5/6 placement contrast.

use tgl_harness::{
    run_experiment, run_experiment_with_capacity, ExperimentConfig, Framework, ModelKind,
    Placement,
};
use tgl_models::ModelConfig;

/// Device allocation counters, capacity caps, and transfer meters are
/// process-global; serialize the tests in this file.
static DEVICE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn device_guard() -> std::sync::MutexGuard<'static, ()> {
    DEVICE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn cfg(fw: Framework, placement: Placement) -> ExperimentConfig {
    let mut c = ExperimentConfig::paper_default(
        fw,
        ModelKind::Tgat,
        tgl_data::DatasetKind::Wiki,
        placement,
    );
    c.dataset = c.dataset.scaled_down(10);
    c.model_cfg = ModelConfig::tiny();
    c.train_cfg.epochs = 1;
    c.train_cfg.batch_size = 60;
    c
}

#[test]
fn baseline_ooms_under_cap_where_tglite_fits() {
    let _g = device_guard();
    // Measure TGLite+opt's peak, cap the device modestly above it, and
    // verify the MFG baseline (which retains eagerly materialized
    // per-layer tensors) trips the cap while TGLite completes.
    let lite = run_experiment(&cfg(Framework::TgLiteOpt, Placement::AllOnDevice));
    let cap = lite.peak_device_bytes + lite.peak_device_bytes / 4;
    let lite_again =
        run_experiment_with_capacity(&cfg(Framework::TgLiteOpt, Placement::AllOnDevice), Some(cap));
    assert!(lite_again.is_ok(), "TGLite must fit under its own cap");
    let tgl = run_experiment_with_capacity(&cfg(Framework::Tgl, Placement::AllOnDevice), Some(cap));
    match tgl {
        Err(msg) => assert!(msg.contains("OOM"), "unexpected error: {msg}"),
        Ok(r) => panic!(
            "baseline unexpectedly fit: peak {} vs cap {cap}",
            r.peak_device_bytes
        ),
    }
}

#[test]
fn generous_cap_lets_everyone_finish() {
    let _g = device_guard();
    let r = run_experiment_with_capacity(
        &cfg(Framework::Tgl, Placement::AllOnDevice),
        Some(8 << 30),
    );
    assert!(r.is_ok());
}

#[test]
fn host_resident_transfers_exceed_device_resident() {
    let _g = device_guard();
    let before = tgl_device::stats();
    let _ = run_experiment(&cfg(Framework::Tgl, Placement::AllOnDevice));
    let mid = tgl_device::stats();
    let _ = run_experiment(&cfg(Framework::Tgl, Placement::HostResident));
    let after = tgl_device::stats();
    // All-on-device still has a few transfers (initial placement, mem
    // gathers), but host-resident per-batch feature shipping dominates.
    let gpu_case = mid.h2d_bytes - before.h2d_bytes;
    let cpu_case = after.h2d_bytes - mid.h2d_bytes;
    assert!(
        cpu_case > gpu_case,
        "host-resident should move more bytes: {cpu_case} vs {gpu_case}"
    );
}

#[test]
fn pinned_pool_is_reused_across_batches() {
    let _g = device_guard();
    use std::sync::Arc;
    use tgl_data::{generate, DatasetKind, DatasetSpec, NegativeSampler};
    use tgl_models::{OptFlags, TemporalModel, Tgat};
    use tglite::{TBatch, TContext};

    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
    let (g, _) = generate(&spec);
    let ctx = TContext::with_device(Arc::clone(&g), tgl_device::Device::Accel);
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::preload_only(), 0);
    let mut negs = NegativeSampler::for_spec(&spec, 0);
    for i in 0..4 {
        let mut b = TBatch::new(Arc::clone(&g), i * 60..(i + 1) * 60);
        b.set_negatives(negs.draw(60));
        let _ = model.forward(&ctx, &b);
    }
    let (acquired, reused) = ctx.pinned_pool().stats();
    assert!(acquired > 0, "preload never used the pinned pool");
    assert!(
        reused > 0,
        "pinned buffers should be recycled across batches ({acquired} acquisitions, 0 reuses)"
    );
}
