//! Thread-count invariance suite: every parallel kernel must produce
//! identical results for `TGL_THREADS` = 1, 2, and 8 and across
//! repeated runs with a fixed seed. The runtime's determinism contract
//! (output-partitioned kernels, fixed-chunk reductions, per-destination
//! sampler seeding) makes these comparisons exact — bitwise, not
//! approximate — so every assertion here uses `==` on `f32` bits.

use std::sync::{Mutex, MutexGuard};

use tgl_integration::tiny_wiki;
use tgl_runtime::rng::{SeedableRng, StdRng};
use tgl_runtime::set_threads;
use tgl_sampler::{NeighborSample, SamplingStrategy, TemporalSampler};
use tgl_tensor::ops::{segment_mean, segment_softmax, segment_sum};
use tgl_tensor::Tensor;

/// Serializes tests: `set_threads` mutates the one global pool.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` under each thread count and asserts all results are equal
/// (then restores a single-threaded pool).
fn assert_invariant<R: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> R) {
    let mut base: Option<(usize, R)> = None;
    for t in THREAD_COUNTS {
        set_threads(t);
        let r = f();
        match &base {
            None => base = Some((t, r)),
            Some((t0, r0)) => assert_eq!(
                r0, &r,
                "{what}: output differs between {t0} and {t} threads"
            ),
        }
    }
    set_threads(1);
}

fn rand_tensor(rng: &mut StdRng, dims: [usize; 2]) -> Tensor {
    Tensor::rand_uniform(dims, -1.0, 1.0, rng)
}

#[test]
fn matmul_forward_and_backward_invariant() {
    let _g = serial();
    assert_invariant("matmul fwd+bwd", || {
        let mut rng = StdRng::seed_from_u64(0xA11);
        let a = rand_tensor(&mut rng, [33, 47]).requires_grad(true);
        let b = rand_tensor(&mut rng, [47, 29]).requires_grad(true);
        let c = a.matmul(&b);
        c.sum_all().backward();
        (c.to_vec(), a.grad().unwrap(), b.grad().unwrap())
    });
}

#[test]
fn bmm_invariant() {
    let _g = serial();
    assert_invariant("bmm fwd+bwd", || {
        let mut rng = StdRng::seed_from_u64(0xB33);
        let a = Tensor::rand_uniform([6, 17, 13], -1.0, 1.0, &mut rng).requires_grad(true);
        let b = Tensor::rand_uniform([6, 13, 11], -1.0, 1.0, &mut rng).requires_grad(true);
        let c = a.bmm(&b);
        c.sum_all().backward();
        (c.to_vec(), a.grad().unwrap(), b.grad().unwrap())
    });
}

#[test]
fn segment_kernels_invariant() {
    let _g = serial();
    assert_invariant("segment sum/mean/softmax fwd+bwd", || {
        let mut rng = StdRng::seed_from_u64(0x5E6);
        let n = 300;
        let x = rand_tensor(&mut rng, [n, 8]).requires_grad(true);
        let seg: Vec<usize> = (0..n).map(|i| (i * 7 % 41) % 23).collect();
        let s = segment_sum(&x, &seg, 23);
        let m = segment_mean(&x, &seg, 23);
        let sm = segment_softmax(&x, &seg, 23);
        sm.mul(&x).sum_all().add(&s.sum_all()).add(&m.sum_all()).backward();
        (s.to_vec(), m.to_vec(), sm.to_vec(), x.grad().unwrap())
    });
}

#[test]
fn elementwise_and_reductions_invariant() {
    let _g = serial();
    assert_invariant("elementwise + reductions", || {
        let mut rng = StdRng::seed_from_u64(0xE1E);
        let x = rand_tensor(&mut rng, [123, 211]).requires_grad(true);
        let y = rand_tensor(&mut rng, [123, 211]);
        let z = x.mul(&y).exp().add(&y).softmax_last();
        let loss = z.sum_dim(0).sum_all().add(&z.max_dim(1).sum_all());
        loss.backward();
        (loss.item(), z.to_vec(), x.grad().unwrap())
    });
}

fn sample_fixture(threads: usize, strategy: SamplingStrategy) -> NeighborSample {
    let (g, _) = tiny_wiki();
    let csr = g.tcsr();
    let n = 1024usize;
    let nodes: Vec<u32> = (0..n as u32).map(|i| i % g.num_nodes() as u32).collect();
    let times: Vec<f64> = (0..n).map(|i| g.max_time() * (i as f64 + 1.0) / n as f64).collect();
    TemporalSampler::new(10, strategy)
        .with_seed(99)
        .with_threads(threads)
        .sample(&csr, &nodes, &times)
}

#[test]
fn sampler_invariant_across_thread_counts() {
    let _g = serial();
    for strategy in [SamplingStrategy::Recent, SamplingStrategy::Uniform] {
        let mut base: Option<NeighborSample> = None;
        for t in THREAD_COUNTS {
            set_threads(t);
            let s = sample_fixture(t, strategy);
            match &base {
                None => base = Some(s),
                Some(b) => {
                    assert_eq!(b.src_nodes, s.src_nodes, "{strategy:?}: nodes differ at {t} threads");
                    assert_eq!(b.src_times, s.src_times, "{strategy:?}: times differ at {t} threads");
                    assert_eq!(b.eids, s.eids, "{strategy:?}: eids differ at {t} threads");
                    assert_eq!(
                        b.dst_index, s.dst_index,
                        "{strategy:?}: dst_index differs at {t} threads"
                    );
                }
            }
        }
    }
    set_threads(1);
}

#[test]
fn sampler_repeatable_with_fixed_seed() {
    let _g = serial();
    set_threads(4);
    let a = sample_fixture(4, SamplingStrategy::Uniform);
    let b = sample_fixture(4, SamplingStrategy::Uniform);
    assert_eq!(a.src_nodes, b.src_nodes);
    assert_eq!(a.eids, b.eids);
    assert_eq!(a.src_times, b.src_times);
    set_threads(1);
}

/// Counter delta of every `cache.` / `dedup.` / `sampler.` counter
/// across one run of `f`. Pool counters are excluded by design: chunk
/// counts and per-worker busy time legitimately vary with the thread
/// count, while the subsystem counters meter *what* was computed and
/// must not depend on how the work was partitioned.
fn subsystem_counter_delta(f: impl FnOnce()) -> Vec<(&'static str, u64)> {
    let relevant = |name: &str| {
        name.starts_with("cache.") || name.starts_with("dedup.") || name.starts_with("sampler.")
    };
    let before: Vec<_> = tglite::obs::metrics::snapshot()
        .into_iter()
        .filter(|(n, _)| relevant(n))
        .collect();
    f();
    tglite::obs::metrics::snapshot()
        .into_iter()
        .filter(|(n, _)| relevant(n))
        .map(|(n, v)| {
            let base = before.iter().find(|(bn, _)| *bn == n).map_or(0, |(_, bv)| *bv);
            (n, v - base)
        })
        .collect()
}

#[test]
fn subsystem_counters_invariant_across_thread_counts() {
    let _g = serial();
    let (g, _) = tiny_wiki();
    let csr = g.tcsr();
    let ctx = tglite::TContext::new(std::sync::Arc::clone(&g));
    let n = 512usize;
    let nodes: Vec<u32> = (0..n as u32).map(|i| i % g.num_nodes() as u32).collect();
    let times: Vec<f64> = vec![g.max_time(); n];
    assert_invariant("cache/dedup/sampler counter deltas", || {
        let delta = subsystem_counter_delta(|| {
            TemporalSampler::new(10, SamplingStrategy::Uniform)
                .with_seed(99)
                .sample(&csr, &nodes, &times);
            let blk = tglite::TBlock::new(&ctx, 0, nodes.clone(), times.clone());
            tglite::op::dedup(&blk);
            tglite::TSampler::new(10, SamplingStrategy::Recent).sample(&blk);
        });
        // The workload must actually touch each metered subsystem, or
        // the invariance assertion would vacuously compare zeros.
        for prefix in ["dedup.", "sampler."] {
            assert!(
                delta.iter().any(|(n, v)| n.starts_with(prefix) && *v > 0),
                "workload never advanced a {prefix}* counter: {delta:?}"
            );
        }
        delta
    });
}

#[test]
fn training_counters_invariant_across_thread_counts() {
    let _g = serial();
    // A full (tiny) TGLite+opt training epoch: the embed cache only
    // runs inside a model, so this is the path that exercises the
    // `cache.*` counters. Training itself is bitwise thread-invariant,
    // and the counters meter its data flow, so the deltas must be too.
    let mut cfg = tgl_harness::ExperimentConfig::paper_default(
        tgl_harness::Framework::TgLiteOpt,
        tgl_harness::ModelKind::Tgat,
        tgl_data::DatasetKind::Wiki,
        tgl_harness::Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(20);
    cfg.model_cfg = tgl_models::ModelConfig::tiny();
    cfg.train_cfg.epochs = 1;
    cfg.train_cfg.batch_size = 60;
    assert_invariant("training counter deltas", || {
        let delta = subsystem_counter_delta(|| {
            tgl_harness::run_experiment(&cfg);
        });
        assert!(
            delta.iter().any(|(n, v)| n.starts_with("cache.") && *v > 0),
            "TGLite+opt epoch never advanced a cache.* counter: {delta:?}"
        );
        delta
    });
}

#[test]
fn blocked_gemm_invariant_at_tile_boundaries() {
    let _g = serial();
    // The blocked GEMM packs B into panels and tiles over
    // MR=4 / NR=8 / MC=64 / KC=256; sizes one off either side of those
    // boundaries exercise every partial-tile edge path. Forward and
    // backward (which routes through the nt/tn kernels) must stay
    // bitwise thread-invariant at all of them.
    const SIZES: [(usize, usize, usize); 7] = [
        (3, 255, 7),    // below every tile in all dims
        (4, 256, 8),    // exact MR / KC / NR multiples
        (5, 257, 9),    // one past MR / KC / NR
        (63, 511, 7),   // just under MC, straddling 2 KC panels
        (65, 513, 17),  // just over MC, one element into a 3rd KC panel
        (128, 256, 40),
        (200, 129, 24), // three full MC row panels + remainder: the
                        // MC-panel parallel split must stay invariant
    ];
    for (m, k, n) in SIZES {
        assert_invariant(&format!("blocked gemm {m}x{k}x{n}"), || {
            let mut rng = StdRng::seed_from_u64(0xB10C);
            let a = rand_tensor(&mut rng, [m, k]).requires_grad(true);
            let b = rand_tensor(&mut rng, [k, n]).requires_grad(true);
            let c = a.matmul(&b);
            c.sum_all().backward();
            (c.to_vec(), a.grad().unwrap(), b.grad().unwrap())
        });
    }
}

/// Bitwise checksum of every parameter of a trained model.
fn param_bits(params: &[Tensor]) -> Vec<u32> {
    params
        .iter()
        .flat_map(|p| p.to_vec().into_iter().map(f32::to_bits))
        .collect()
}

/// Trains a small MLP for a fixed number of Adam steps and returns the
/// final parameter bits plus per-step losses.
fn train_mlp_run() -> (Vec<u32>, Vec<u32>) {
    use tgl_tensor::nn::{Mlp, Module};
    use tgl_tensor::optim::Adam;
    let mut rng = StdRng::seed_from_u64(0xF00D);
    let mlp = Mlp::new(6, 16, 1, &mut rng);
    let x = rand_tensor(&mut rng, [32, 6]);
    let y = rand_tensor(&mut rng, [32, 1]);
    let mut opt = Adam::new(mlp.parameters(), 1e-2);
    let mut losses = Vec::new();
    for _ in 0..25 {
        let d = mlp.forward(&x).sub(&y);
        let loss = d.mul(&d).sum_all();
        opt.zero_grad();
        loss.backward();
        opt.step();
        losses.push(loss.item().to_bits());
    }
    (param_bits(&mlp.parameters()), losses)
}

#[test]
fn pool_recycling_is_bitwise_invisible() {
    let _g = serial();
    set_threads(1);
    // Recycled buffers are dirty: `take_uninit` hands back whatever the
    // donor left behind. The contract is that no kernel ever reads an
    // element it did not write, so training with a well-used pool must
    // be bitwise identical to training with recycling disabled
    // (`TGL_POOL=off`), down to every parameter bit.
    tgl_tensor::pool::set_enabled(true);
    let _ = train_mlp_run(); // dirty the free lists with live values
    let (params_on, losses_on) = train_mlp_run();
    tgl_tensor::pool::set_enabled(false);
    let (params_off, losses_off) = train_mlp_run();
    tgl_tensor::pool::set_enabled(true);
    assert_eq!(losses_on, losses_off, "per-step losses diverged");
    assert_eq!(params_on, params_off, "final parameter bits diverged");
}

#[test]
fn pool_recycling_is_bitwise_invisible_to_full_epoch() {
    let _g = serial();
    set_threads(1);
    // Same contract at full-pipeline scale: one quickstart-sized
    // TGLite+opt epoch (sampling, attention, memory, Adam) pool-on
    // vs pool-off must report bitwise-identical losses and APs.
    let mut cfg = tgl_harness::ExperimentConfig::paper_default(
        tgl_harness::Framework::TgLiteOpt,
        tgl_harness::ModelKind::Tgat,
        tgl_data::DatasetKind::Wiki,
        tgl_harness::Placement::AllOnDevice,
    );
    cfg.dataset = cfg.dataset.scaled_down(20);
    cfg.model_cfg = tgl_models::ModelConfig::tiny();
    cfg.train_cfg.epochs = 1;
    cfg.train_cfg.batch_size = 60;
    tgl_tensor::pool::set_enabled(true);
    let _ = tgl_harness::run_experiment(&cfg); // dirty the free lists
    let on = tgl_harness::run_experiment(&cfg);
    tgl_tensor::pool::set_enabled(false);
    let off = tgl_harness::run_experiment(&cfg);
    tgl_tensor::pool::set_enabled(true);
    let bits =
        |r: &tgl_harness::ExperimentResult| -> Vec<u32> {
            r.epochs.iter().map(|e| e.loss.to_bits()).collect()
        };
    assert_eq!(bits(&on), bits(&off), "epoch losses diverged");
    assert_eq!(
        on.test_ap.to_bits(),
        off.test_ap.to_bits(),
        "test AP diverged"
    );
}

#[test]
fn histogram_counts_and_sums_invariant_across_thread_counts() {
    let _g = serial();
    // The latency histograms are recorded concurrently from pool
    // workers; their count/sum/max/bucket state must depend only on the
    // multiset of recorded values, never on how many threads recorded
    // them. Record a fixed multiset through `parallel_for` itself so
    // the samples genuinely arrive from different threads at t > 1.
    let h = tglite::obs::hist::histogram("determinism.test_ns");
    assert_invariant("histogram count/sum/max/buckets", || {
        h.reset();
        tgl_runtime::parallel_for(10_000, 1, |r| {
            for i in r {
                h.record_always((i as u64 % 97) * (i as u64 % 13 + 1));
            }
        });
        let s = h.snapshot();
        (s.count, s.sum, s.max, s.buckets.to_vec())
    });
}

#[test]
fn sum_all_matches_sequential_within_tolerance() {
    let _g = serial();
    // The chunked sum must stay within 1e-5 (relative) of a plain
    // sequential fold, and be exactly invariant across thread counts.
    let mut rng = StdRng::seed_from_u64(0x5F1);
    let x = Tensor::rand_uniform([100_000], -1.0, 1.0, &mut rng);
    let seq: f32 = x.to_vec().iter().sum();
    assert_invariant("sum_all", || x.sum_all().item());
    set_threads(8);
    let par = x.sum_all().item();
    set_threads(1);
    let denom = seq.abs().max(1.0);
    assert!(
        (par - seq).abs() / denom <= 1e-5,
        "chunked sum {par} vs sequential {seq}"
    );
}
