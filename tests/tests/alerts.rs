//! Acceptance suite for the SLO alert engine on real training runs:
//! an injected-regression run (absurd learning rate, warn policy) must
//! fire the loss-trend rule deterministically, with the retained
//! `train.loss` series and the alert transition log bitwise identical
//! at 1 and 4 pool threads; and under the `fail` health policy a
//! fail-severity firing must abort the run through the health monitor,
//! leaving a flight dump that carries the series trajectory.
//!
//! Everything the alert engine touches is process-global (time-series
//! store, rule engine, health log, thread pool), so every test holds a
//! serial lock and restores default state on the way out.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{generate, DatasetKind, DatasetSpec, Split};
use tgl_harness::{HealthPolicy, TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tgl_runtime::set_threads;
use tglite::obs::{alert, timeseries};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One epoch of TGAT on a scaled-down Wiki stream with an injected
/// regression: the learning rate is absurd, so the loss stops
/// improving (or leaves the finite range entirely) within a few steps.
fn diverged_epoch(threads: usize, lr: f32, policy: HealthPolicy, rules: &str) -> f32 {
    set_threads(threads);
    timeseries::enable(true);
    timeseries::reset();
    tglite::obs::health::reset();
    alert::install(alert::RuleSet::parse(rules).expect("rules parse"));

    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(8);
    let (g, _) = generate(&spec);
    let ctx = tglite::TContext::new(g.clone());
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 42);
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), lr);
    let split = Split::standard(&g);
    let trainer = Trainer::new(
        TrainConfig { batch_size: 100, epochs: 1, lr, seed: 0 },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    )
    .with_health(policy);
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    stats.loss
}

/// Bitwise view of a series snapshot (NaN-safe, unlike `==` on f64).
fn bits(points: &[(u64, f64)]) -> Vec<(u64, u64)> {
    points.iter().map(|&(i, v)| (i, v.to_bits())).collect()
}

fn transition_bits(t: &[alert::Firing]) -> Vec<(String, String, bool, u64, u64)> {
    t.iter()
        .map(|f| (f.rule.clone(), f.metric.clone(), f.firing, f.idx, f.value.to_bits()))
        .collect()
}

const DIVERGENCE_RULES: &str = "
[loss-divergence]
metric = train.loss
window = 4
for = 2
severity = warn
trend = non-decreasing

[loss-nonfinite]
metric = train.loss
window = 1
for = 1
severity = warn
nonfinite = true
";

/// The headline acceptance: `--lr 1e18 --health warn` fires the
/// loss-trend rule, and both the retained series and the transition
/// log are bitwise identical at 1 and 4 threads.
#[test]
fn injected_regression_fires_trend_alert_identically_at_1_and_4_threads() {
    let _g = serial();
    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        diverged_epoch(threads, 1e18, HealthPolicy::Warn, DIVERGENCE_RULES);
        let series = timeseries::get("train.loss").expect("train.loss series retained");
        let status = alert::status();
        let transitions = alert::transitions();
        runs.push((series, status, transitions));
    }
    set_threads(1);
    alert::clear();

    let (s1, st1, t1) = &runs[0];
    let (s4, st4, t4) = &runs[1];

    // The injected regression must actually fire the trend rule.
    let trend = st1
        .iter()
        .find(|s| s.rule.name == "loss-divergence")
        .expect("trend rule status");
    assert!(
        trend.fired_total >= 1,
        "loss-trend rule never fired on a lr=1e18 run (status {st1:?})"
    );
    assert!(
        t1.iter().any(|f| f.rule == "loss-divergence" && f.firing),
        "no firing transition for loss-divergence: {t1:?}"
    );
    // The NaN canary fires too — the loss leaves the finite range.
    assert!(
        t1.iter().any(|f| f.rule == "loss-nonfinite" && f.firing),
        "no firing transition for loss-nonfinite: {t1:?}"
    );

    // Thread-count invariance, bitwise: same points, same transitions.
    assert!(!s1.points.is_empty(), "train.loss retained no points");
    assert_eq!(
        bits(&s1.points),
        bits(&s4.points),
        "train.loss series differs between 1 and 4 threads"
    );
    assert_eq!(s1.total, s4.total);
    assert_eq!(
        transition_bits(t1),
        transition_bits(t4),
        "alert transitions differ between 1 and 4 threads"
    );
    for (a, b) in st1.iter().zip(st4.iter()) {
        assert_eq!(a.rule.name, b.rule.name);
        assert_eq!(a.fired_total, b.fired_total, "fired_total differs for {}", a.rule.name);
        assert_eq!(a.firing, b.firing, "firing state differs for {}", a.rule.name);
    }
}

/// Under `--health fail`, a fail-severity alert firing aborts the run
/// through the health monitor — and the post-mortem flight dump lands
/// on disk carrying the reason and the time-series trajectory.
#[test]
fn fail_policy_alert_aborts_run_and_leaves_flight_dump_with_series() {
    let _g = serial();
    let dir = std::env::temp_dir().join(format!("tgl-alerts-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create flight dir");
    std::env::set_var("TGL_FLIGHT_DIR", &dir);

    // A large-but-finite learning rate: the loss explodes by orders of
    // magnitude but never leaves the finite range, so the trainer's
    // own non-finite check stays quiet and the abort can only come
    // from the alert path (no hysteresis: the spike recovers, so a
    // single breaching window is the whole signal).
    let rules = "
[loss-divergence]
metric = train.loss
window = 3
for = 1
severity = fail
trend = non-decreasing
";
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        diverged_epoch(1, 100.0, HealthPolicy::Fail, rules)
    }));
    alert::clear();
    std::env::remove_var("TGL_FLIGHT_DIR");

    let payload = result.expect_err("fail policy should abort the diverged run");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("alert loss-divergence fired"),
        "panic message should name the alert, got {msg:?}"
    );

    let dump = std::fs::read_dir(&dir)
        .expect("read flight dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("flight dump written on alert abort");
    let text = std::fs::read_to_string(&dump).expect("read flight dump");
    std::fs::remove_dir_all(&dir).ok();
    let doc = tgl_data::Json::parse(&text).expect("flight dump is valid JSON");
    assert_eq!(
        doc.get("reason").and_then(tgl_data::Json::as_str),
        Some("alert-fail")
    );
    let ts = doc.get("timeseries").expect("flight dump carries timeseries section");
    assert!(
        ts.get("train.loss").and_then(tgl_data::Json::as_arr).is_some_and(|a| !a.is_empty()),
        "flight dump timeseries missing train.loss trajectory"
    );
}
