//! Scalar-vs-SIMD kernel contract suite.
//!
//! The tensor crate carries two kernel modes (`tgl_tensor::kernel`):
//! `exact` restricts SIMD to lane-wise operations whose per-element
//! IEEE roundings match the scalar reference, so every result is
//! bitwise identical to a scalar-only build; `fast` adds FMA
//! contraction, horizontal vector reductions, and a polynomial exp,
//! trading bitwise parity for throughput within documented tolerances.
//! Both modes stay thread-count invariant. These tests pin each half
//! of that contract against the public tensor API.

use std::sync::{Mutex, MutexGuard};

use tgl_runtime::rng::{SeedableRng, StdRng};
use tgl_runtime::set_threads;
use tgl_tensor::kernel::{self, KernelMode};
use tgl_tensor::ops::{segment_mean, segment_softmax, segment_sum, AdamStep};
use tgl_tensor::Tensor;

/// Serializes tests: kernel mode, SIMD gate, and the thread pool are
/// process-global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Restores the default kernel state (exact mode, SIMD auto-detected,
/// one thread) when a test scope unwinds.
struct RestoreKernel;
impl Drop for RestoreKernel {
    fn drop(&mut self) {
        kernel::set_mode(KernelMode::Exact);
        kernel::set_simd(true);
        set_threads(1);
    }
}

fn rand2(rng: &mut StdRng, dims: [usize; 2]) -> Tensor {
    Tensor::rand_uniform(dims, -1.0, 1.0, rng)
}

/// GEMM shapes crossing every tile boundary (MR=4 / NR=8 / KC=256 /
/// MC=64) plus the attention-shaped skinny cases from the bench sweep.
const GEMM_SIZES: [(usize, usize, usize); 6] = [
    (3, 5, 7),
    (5, 257, 9),
    (65, 300, 33),
    (400, 16, 10), // attention scores: (batch*heads) x dim x fanout
    (400, 10, 16), // attention output
    (7, 513, 31),
];

/// One deterministic pass over the ops under contract; returns every
/// produced value so callers can compare across kernel configurations.
fn op_suite() -> Vec<f32> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(0x51D);

    // Dense GEMM, forward and backward (nt/tn kernels).
    for (m, k, n) in GEMM_SIZES {
        let a = rand2(&mut rng, [m, k]).requires_grad(true);
        let b = rand2(&mut rng, [k, n]).requires_grad(true);
        let c = a.matmul(&b);
        c.sum_all().backward();
        out.extend(c.to_vec());
        out.extend(a.grad().unwrap());
        out.extend(b.grad().unwrap());
    }

    // Batched GEMM.
    let a = Tensor::rand_uniform([4, 9, 17], -1.0, 1.0, &mut rng).requires_grad(true);
    let b = Tensor::rand_uniform([4, 17, 11], -1.0, 1.0, &mut rng).requires_grad(true);
    let c = a.bmm(&b);
    c.sum_all().backward();
    out.extend(c.to_vec());
    out.extend(a.grad().unwrap());

    // Softmax over rows long enough to hit the 8-lane paths plus a
    // ragged tail.
    let x = rand2(&mut rng, [37, 21]).requires_grad(true);
    let w = rand2(&mut rng, [37, 21]);
    let s = x.softmax_last();
    s.mul(&w).sum_all().backward();
    out.extend(s.to_vec());
    out.extend(x.grad().unwrap());

    // Segment kernels at d=16 (two full lanes).
    let n = 300;
    let x = rand2(&mut rng, [n, 16]).requires_grad(true);
    let seg: Vec<usize> = (0..n).map(|i| (i * 7 % 41) % 23).collect();
    let ss = segment_sum(&x, &seg, 23);
    let sm = segment_mean(&x, &seg, 23);
    let sx = segment_softmax(&x, &seg, 23);
    sx.mul(&x).sum_all().add(&ss.sum_all()).add(&sm.sum_all()).backward();
    out.extend(ss.to_vec());
    out.extend(sm.to_vec());
    out.extend(sx.to_vec());
    out.extend(x.grad().unwrap());

    // Fused elementwise ops.
    let a = rand2(&mut rng, [19, 33]).requires_grad(true);
    let b = rand2(&mut rng, [19, 33]);
    let y = a.add_relu(&b).scale_add(0.37, &b).addcmul(&b, &b, -0.21);
    y.sum_all().backward();
    out.extend(y.to_vec());
    out.extend(a.grad().unwrap());

    // In-place hot-path ops, including the fused Adam step.
    let p = rand2(&mut rng, [11, 31]);
    let g: Vec<f32> = (0..11 * 31).map(|i| ((i * 37 % 100) as f32 - 50.0) / 50.0).collect();
    let m = Tensor::zeros([11, 31]);
    let v = Tensor::zeros([11, 31]);
    p.add_(&rand2(&mut rng, [11, 31]));
    p.mul_scalar_(0.97);
    p.add_scaled_(&g, -0.01);
    p.addcmul_(&g, &g, 0.005);
    for t in 1..=7i32 {
        let s = AdamStep {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bc1: 1.0 - 0.9f32.powi(t),
            bc2: 1.0 - 0.999f32.powi(t),
        };
        p.adam_step_(&g, &m, &v, s);
    }
    out.extend(p.to_vec());
    out.extend(m.to_vec());
    out.extend(v.to_vec());

    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(1.0))
        .fold(0.0, f32::max)
}

#[test]
fn exact_mode_simd_is_bitwise_identical_to_scalar() {
    let _g = serial();
    let _restore = RestoreKernel;
    kernel::set_mode(KernelMode::Exact);
    set_threads(1);
    kernel::set_simd(false);
    let scalar = op_suite();
    kernel::set_simd(true);
    let simd = op_suite();
    assert_eq!(
        bits(&scalar),
        bits(&simd),
        "exact mode must be bitwise identical with SIMD on ({}) and off",
        kernel::simd_label()
    );
}

#[test]
fn fast_mode_stays_within_documented_tolerance() {
    let _g = serial();
    let _restore = RestoreKernel;
    set_threads(1);
    kernel::set_mode(KernelMode::Exact);
    let exact = op_suite();
    kernel::set_mode(KernelMode::Fast);
    let fast = op_suite();
    // DESIGN.md "Kernel contract": fast-mode results differ from exact
    // only by FMA contraction / reassociated reductions / polynomial
    // exp — all O(k * eps) effects. 1e-4 relative (against a max(|x|,1)
    // denominator) bounds the whole suite with wide margin.
    let err = max_rel_err(&exact, &fast);
    assert!(err <= 1e-4, "fast-mode divergence {err} exceeds 1e-4");
}

#[test]
fn fast_mode_gradients_pass_finite_difference_check() {
    let _g = serial();
    let _restore = RestoreKernel;
    set_threads(1);
    kernel::set_mode(KernelMode::Fast);
    // Composite loss covering GEMM, softmax, and fused paths whose
    // fast kernels reassociate: analytic gradients must still track
    // central differences at the usual f32 gradcheck tolerance.
    let base: Vec<f32> = (0..6 * 5).map(|i| ((i * 13 % 17) as f32 - 8.0) / 8.0).collect();
    let w = Tensor::from_vec((0..5 * 9).map(|i| ((i * 7 % 23) as f32 - 11.0) / 11.0).collect(), [5, 9]);
    let loss_of = |vals: Vec<f32>| -> (Tensor, f32) {
        let x = Tensor::from_vec(vals, [6, 5]).requires_grad(true);
        let y = x.matmul(&w).softmax_last().sum_all();
        (x, y.item())
    };
    let (x, _) = loss_of(base.clone());
    let y = x.matmul(&w).softmax_last().sum_all();
    y.backward();
    let analytic = x.grad().unwrap();
    let eps = 1e-2f32;
    for i in 0..base.len() {
        let mut up = base.clone();
        up[i] += eps;
        let mut dn = base.clone();
        dn[i] -= eps;
        let numeric = (loss_of(up).1 - loss_of(dn).1) / (2.0 * eps);
        let denom = numeric.abs().max(analytic[i].abs()).max(1e-2);
        assert!(
            (numeric - analytic[i]).abs() / denom <= 3e-2,
            "grad[{i}] analytic {} vs numeric {numeric} under fast kernels",
            analytic[i]
        );
    }
}

#[test]
fn mc_panel_gemm_thread_invariant_in_both_modes() {
    let _g = serial();
    let _restore = RestoreKernel;
    // 300 rows = several MC=64 panels plus a remainder; k=257 crosses a
    // KC boundary. The MC-panel parallel GEMM must be bitwise
    // invariant between 1 and 4 threads in *both* kernel modes — fast
    // mode changes which arithmetic runs, never how work is split.
    for mode in [KernelMode::Exact, KernelMode::Fast] {
        kernel::set_mode(mode);
        let run = |threads: usize| {
            set_threads(threads);
            let mut rng = StdRng::seed_from_u64(0x6CA);
            let a = rand2(&mut rng, [300, 257]).requires_grad(true);
            let b = rand2(&mut rng, [257, 33]).requires_grad(true);
            let c = a.matmul(&b);
            c.sum_all().backward();
            (bits(&c.to_vec()), bits(&a.grad().unwrap()), bits(&b.grad().unwrap()))
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four, "{mode:?}: GEMM differs between 1 and 4 threads");
    }
}

#[test]
fn fused_elementwise_thread_invariant_in_fast_mode() {
    let _g = serial();
    let _restore = RestoreKernel;
    // Regression guard: the fused scale_add/addcmul forwards vectorize
    // per parallel_for range, and range boundaries move with the
    // thread count. The FMA paths' scalar tails must round exactly
    // like the vector body (f32::mul_add), or elements near chunk
    // splits change value with the thread count. 123*211 elements is
    // past the elementwise parallel threshold and not a lane multiple.
    kernel::set_mode(KernelMode::Fast);
    let run = |threads: usize| {
        set_threads(threads);
        let mut rng = StdRng::seed_from_u64(0xF0A6);
        let a = rand2(&mut rng, [123, 211]).requires_grad(true);
        let b = rand2(&mut rng, [123, 211]);
        let y = a.scale_add(0.731, &b).addcmul(&b, &b, -0.417);
        y.sum_all().backward();
        (bits(&y.to_vec()), bits(&a.grad().unwrap()))
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(one, eight, "fused scale_add/addcmul vary with thread count in fast mode");
}

#[test]
fn mode_parsing_accepts_exact_and_fast_only() {
    assert_eq!(kernel::parse("exact"), Some(KernelMode::Exact));
    assert_eq!(kernel::parse("FAST"), Some(KernelMode::Fast));
    assert_eq!(kernel::parse(" Exact "), Some(KernelMode::Exact));
    assert_eq!(kernel::parse("quick"), None);
    assert_eq!(kernel::parse(""), None);
}
