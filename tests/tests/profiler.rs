//! Acceptance suite for the op-level profiler (`tgl_obs::profile`):
//! analytic GEMM FLOP counts must match 2·M·N·K exactly, the recorded
//! call/FLOP/byte totals must be invariant to the worker-pool width
//! (dispatch happens on the caller thread; only kernels fan out), a
//! real training epoch's per-phase op self-times must stay within the
//! tracer's phase spans, and the `tgl-profile/v1` artifact must parse
//! and carry the expected rows.
//!
//! The profiler sink, phase stack, and thread pool are process-global,
//! so every test holds the `serial()` lock and restores defaults.

use std::sync::{Mutex, MutexGuard};

use tgl_data::{generate, DatasetKind, DatasetSpec, Json, Split};
use tgl_harness::{RunReporter, TrainConfig, Trainer};
use tgl_models::{ModelConfig, OptFlags, TemporalModel, Tgat};
use tgl_runtime::set_threads;
use tglite::obs::profile::{self, OpStat};
use tglite::tensor::Tensor;

/// Serializes tests: the profiler sink and pool width are global.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn gemm_flop_counts_match_analytic_2mnk() {
    let _g = serial();
    profile::enable(true);
    profile::take();
    let (m, k, n) = (8usize, 16usize, 12usize);
    let a = Tensor::ones([m, k]).requires_grad(true);
    let b = Tensor::ones([k, n]);
    let c = a.matmul(&b);
    c.sum_all().backward();
    let stats = profile::take();
    profile::enable(false);

    let mm = stats
        .iter()
        .find(|s| s.op == "matmul")
        .expect("matmul row recorded");
    assert_eq!(mm.calls, 1);
    assert_eq!(mm.flops, 2 * (m * k * n) as u64, "GEMM FLOPs must be 2MNK");
    assert_eq!(mm.shape, "8x16,16x12");
    assert_eq!(
        mm.bytes_read,
        4 * (m * k + k * n) as u64,
        "GEMM reads both operands once"
    );
    assert_eq!(mm.bytes_written, 4 * (m * n) as u64);

    // The backward node re-runs two GEMMs' worth of work; its declared
    // cost flows through the autograd node into a `.bwd` row.
    let bwd = stats
        .iter()
        .find(|s| s.op == "matmul.bwd")
        .expect("backward sweep must attribute matmul's declared cost");
    assert_eq!(bwd.calls, 1);
    assert_eq!(bwd.flops, 4 * (m * k * n) as u64);
}

/// A deterministic mixed workload under two phase scopes.
fn invariance_workload() {
    let a = Tensor::ones([64, 32]);
    let b = Tensor::ones([32, 48]);
    for _ in 0..3 {
        let c = {
            let _s = tglite::prof::scope("prof-inv-mm");
            a.matmul(&b)
        };
        let _d = {
            let _s = tglite::prof::scope("prof-inv-ew");
            c.relu().add(&c).sum_all()
        };
    }
}

#[test]
fn call_and_flop_totals_are_thread_count_invariant() {
    let _g = serial();
    let before = tgl_runtime::current_threads();
    // Work attribution (not timing) must be identical at any width.
    let run_at = |threads: usize| -> Vec<(&'static str, &'static str, u64, u64, u64, u64)> {
        set_threads(threads);
        profile::enable(true);
        profile::take();
        invariance_workload();
        let stats = profile::take();
        profile::enable(false);
        let mut keys: Vec<_> = stats
            .iter()
            .map(|s| (s.op, s.phase, s.calls, s.flops, s.bytes_read, s.bytes_written))
            .collect();
        keys.sort();
        keys
    };
    let single = run_at(1);
    let wide = run_at(4);
    set_threads(before);
    assert!(
        single.iter().any(|(op, phase, ..)| *op == "matmul" && *phase == "prof-inv-mm"),
        "workload must record a phase-scoped matmul: {single:?}"
    );
    assert_eq!(
        single, wide,
        "op/phase/calls/flops/bytes must not depend on pool width"
    );
}

#[test]
fn training_phase_op_self_times_stay_within_tracer_spans() {
    let _g = serial();
    profile::enable(true);
    profile::take();
    let mut rep = RunReporter::start();

    let spec = DatasetSpec::of(DatasetKind::Wiki).scaled_down(10);
    let (g, _) = generate(&spec);
    let ctx = tglite::TContext::new(g.clone());
    let mut model = Tgat::new(&ctx, ModelConfig::tiny(), OptFlags::all(), 42);
    let mut opt = tglite::tensor::optim::Adam::new(model.parameters(), 1e-3);
    let split = Split::standard(&g);
    let trainer = Trainer::new(
        TrainConfig { batch_size: 100, epochs: 1, lr: 1e-3, seed: 0 },
        spec.n_src as u32,
        spec.num_nodes() as u32,
    );
    let stats = trainer.train_epoch(&mut model, &ctx, &split, &mut opt, 0);
    rep.record_epoch(0, &stats);
    let (test_ap, test_s) = trainer.evaluate(&mut model, &ctx, split.test.clone());
    let report = rep.finish(test_ap, test_s);
    profile::enable(false);

    assert!(!report.profile.is_empty(), "profiled run recorded no ops");
    // Ops attribute to the paper's Fig. 7 phases, and heavy tensor
    // phases are actually covered by op self time.
    let phase_ops = |phase: &str| -> f64 {
        report
            .profile
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.self_ns as f64 / 1e9)
            .sum()
    };
    assert!(
        phase_ops("attention") > 0.0,
        "attention phase must contain op self time: {:?}",
        report.profile.iter().map(|s| s.phase).collect::<Vec<_>>()
    );
    assert!(phase_ops("backward") > 0.0, "backward sweep must attribute ops");

    // Self-time accounting never exceeds the tracer's phase spans: for
    // every phase, op self time <= span time within 10% (plus a small
    // absolute tolerance for sub-millisecond phases).
    for (phase, span_s) in &report.phases_total_s {
        let ops_s = phase_ops(phase);
        assert!(
            ops_s <= span_s * 1.10 + 2e-3,
            "phase {phase:?}: op self time {ops_s:.4}s exceeds span {span_s:.4}s"
        );
    }
}

#[test]
fn profile_artifact_is_valid_v1_json() {
    let _g = serial();
    profile::enable(true);
    profile::take();
    {
        let _s = tglite::prof::scope("prof-json-phase");
        let a = Tensor::ones([16, 16]);
        let _ = a.matmul(&a);
    }
    let stats: Vec<OpStat> = profile::take();
    profile::enable(false);

    let text = profile::to_json(&stats);
    let doc = Json::parse(&text).expect("tgl-profile artifact must parse");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tgl-profile/v1"));
    let ops = doc.get("ops").and_then(Json::as_arr).expect("ops array");
    let mm = ops
        .iter()
        .find(|o| {
            o.get("op").and_then(Json::as_str) == Some("matmul")
                && o.get("phase").and_then(Json::as_str) == Some("prof-json-phase")
        })
        .expect("matmul row keyed by enclosing phase");
    assert_eq!(
        mm.get("flops").and_then(Json::as_num),
        Some(2.0 * 16.0 * 16.0 * 16.0)
    );
    for field in [
        "calls",
        "self_ns",
        "total_ns",
        "bytes_read",
        "bytes_written",
        "pool_hits",
        "pool_misses",
        "transfer_bytes",
    ] {
        assert!(mm.get(field).and_then(Json::as_num).is_some(), "missing {field}");
    }
}

#[test]
fn live_endpoint_serves_profile_json() {
    let _g = serial();
    profile::enable(true);
    profile::take();
    let addr = tglite::obs::expo::start("127.0.0.1:0").expect("bind exposition server");
    {
        let _s = tglite::prof::scope("prof-live-phase");
        let a = Tensor::ones([8, 8]);
        let _ = a.matmul(&a);
    }
    let (code, body) =
        tglite::obs::expo::http_get(&addr.to_string(), "/profile.json").expect("scrape");
    tglite::obs::expo::http_get(&addr.to_string(), "/quit").ok();
    profile::take();
    profile::enable(false);
    assert_eq!(code, 200);
    let doc = Json::parse(&body).expect("/profile.json must serve valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("tgl-profile/v1"));
    assert!(
        body.contains("\"matmul\""),
        "snapshot endpoint must include the live matmul row"
    );
}
